"""Churn-rate and Efficiency metrics (Section 4.4 of the paper).

Under churn the overlay may be disconnected, so average distance is
undefined; the paper therefore evaluates the *Efficiency* of a node:

    eff_ij = 1 / d_ij  if i and j are connected, 0 otherwise
    eff_i  = (1 / (n-1)) * sum_{j != i} eff_ij

and the churn rate of a membership process:

    Churn = (1/T) * sum_events |U_{i-1} symdiff U_i| / max(|U_{i-1}|, |U_i|)
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set

import numpy as np

from repro.routing.graph import OverlayGraph
from repro.routing.shortest_path import all_pairs_shortest_costs
from repro.util.validation import ValidationError, check_positive


def efficiency_matrix(
    graph: Optional[OverlayGraph],
    *,
    active: Optional[Iterable[int]] = None,
    distances: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Pairwise efficiency matrix over the (optionally restricted) overlay.

    ``result[i, j] = 1 / d_ij`` when a directed path from ``i`` to ``j``
    exists, 0 otherwise.  Rows and columns of inactive nodes are zero.

    ``distances`` optionally supplies the (restricted) all-pairs
    shortest-cost matrix — the engine's epoch scoring already computes
    it, and the lockstep batch computes it for many deployments in one
    stacked sweep — in which case ``graph`` may be None.
    """
    if distances is None:
        n = graph.n
        active_set = set(active) if active is not None else set(range(n))
        working = graph.restricted(active_set) if active is not None else graph
        distances = all_pairs_shortest_costs(working)
    else:
        n = distances.shape[0]
        active_set = set(active) if active is not None else set(range(n))
    act = np.array(sorted(active_set), dtype=int)
    eff = np.zeros((n, n))
    if len(act) == 0:
        return eff
    sub = distances[np.ix_(act, act)]
    vals = np.zeros_like(sub)
    positive = np.isfinite(sub) & (sub > 0)
    vals[positive] = 1.0 / sub[positive]
    # Zero-cost path (identical endpoints on the metric): treat as
    # maximally efficient rather than dividing by zero.
    vals[sub == 0] = 1.0
    np.fill_diagonal(vals, 0.0)
    eff[np.ix_(act, act)] = vals
    return eff


def node_efficiency(
    graph: OverlayGraph, node: int, *, active: Optional[Iterable[int]] = None
) -> float:
    """Efficiency of one node: mean of 1/d to all other *relevant* nodes.

    The normalisation is by ``n - 1`` over the full node population (as in
    the paper): destinations that are OFF or unreachable contribute zero,
    so heavy churn directly depresses efficiency.
    """
    eff = efficiency_matrix(graph, active=active)
    n = graph.n
    if n < 2:
        return 0.0
    return float(eff[node].sum() / (n - 1))


def overlay_efficiency(
    graph: Optional[OverlayGraph],
    *,
    active: Optional[Iterable[int]] = None,
    distances: Optional[np.ndarray] = None,
) -> float:
    """Mean node efficiency over the active nodes.

    ``distances`` forwards a precomputed all-pairs shortest-cost matrix
    to :func:`efficiency_matrix` (``graph`` may then be None).
    """
    n = graph.n if graph is not None else distances.shape[0]
    active_list = sorted(set(active)) if active is not None else list(range(n))
    if not active_list:
        return 0.0
    eff = efficiency_matrix(graph, active=active_list, distances=distances)
    if n < 2:
        return 0.0
    per_node = eff[active_list].sum(axis=1) / (n - 1)
    return float(per_node.mean())


def churn_rate(memberships: Sequence[Set[int]], horizon: float) -> float:
    """The paper's churn-rate metric from a sequence of membership sets.

    Parameters
    ----------
    memberships:
        The sequence ``U_0, U_1, ...`` of node sets, one entry per
        membership-change event (plus the initial set).
    horizon:
        Total observation time ``T`` in seconds.
    """
    horizon = check_positive(horizon, "horizon")
    if len(memberships) < 2:
        return 0.0
    total = 0.0
    for prev, curr in zip(memberships[:-1], memberships[1:]):
        denom = max(len(prev), len(curr))
        if denom == 0:
            continue
        total += len(prev.symmetric_difference(curr)) / denom
    return total / horizon


def time_to_reconverge(
    records: Sequence, event_epoch: int, *, stable_epochs: int = 1
) -> Optional[int]:
    """Epochs from a failure event until the overlay stops re-wiring.

    The smallest ``d >= 0`` such that the ``stable_epochs`` consecutive
    epoch records starting at ``event_epoch + d`` all report zero
    re-wirings — i.e. every node is content with its wiring again.
    Returns None when the run never exhibits such a quiet window (e.g.
    under sustained churn, or when the run ends mid-repair).

    ``records`` is any sequence of objects with ``epoch`` and
    ``rewirings`` attributes (:class:`repro.core.engine.EpochRecord`).
    """
    if int(stable_epochs) < 1:
        raise ValidationError("stable_epochs must be >= 1")
    stable = int(stable_epochs)
    tail = [r for r in records if r.epoch >= int(event_epoch)]
    for start in range(len(tail) - stable + 1):
        if all(r.rewirings == 0 for r in tail[start : start + stable]):
            return int(tail[start].epoch) - int(event_epoch)
    return None


def cost_overshoot(records: Sequence, event_epoch: int) -> float:
    """Relative peak of mean cost during repair after a failure event.

    ``(max post-event mean cost - pre-event baseline) / baseline``,
    clamped at zero: how much worse the overlay transiently got while
    routing around the failure, relative to its mean cost before the
    event.  NaN when either window is empty or the baseline is not a
    positive finite number.
    """
    event_epoch = int(event_epoch)
    pre = [
        r.mean_cost
        for r in records
        if r.epoch < event_epoch and np.isfinite(r.mean_cost)
    ]
    post = [
        r.mean_cost
        for r in records
        if r.epoch >= event_epoch and np.isfinite(r.mean_cost)
    ]
    if not pre or not post:
        return float("nan")
    baseline = float(np.mean(pre))
    if not np.isfinite(baseline) or baseline <= 0:
        return float("nan")
    return max(0.0, (float(max(post)) - baseline) / baseline)


def expected_healing_time(epoch_length: float, n: int) -> float:
    """Expected BR self-healing time ``O(T/n)`` noted in Section 4.4.

    A disconnected BR overlay heals as soon as any active node re-wires;
    with unsynchronised nodes re-wiring once per epoch ``T``, some node
    re-wires every ``T / n`` seconds on average.
    """
    check_positive(epoch_length, "epoch_length")
    if n < 1:
        raise ValidationError("n must be >= 1")
    return epoch_length / n
