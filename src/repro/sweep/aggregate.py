"""Join finished sweep cells back into experiment-result tables.

Aggregation is the inverse of expansion: cells are grouped by the
experiment their spec names, and each group merges into one
:class:`~repro.experiments.harness.ExperimentResult` whose series carry
the sweep coordinates:

* an axis whose display value is constant across the group contributes
  nothing (it only distinguished *other* groups, e.g. the panel axis of
  a four-panel template);
* an axis named ``k_grid`` is folded into the series itself — ``k`` is
  already the x-axis of every k-sweep result, so cells sharded per-k
  join back into the same series at different x;
* every other varying axis suffixes the series label with its
  coordinates (``"best-response [churn_rate=0.01]"``, including an
  explicit ``seed`` axis — replicates are a result dimension), keeping
  the merged table unambiguous;
* when one experiment group spans several templates, the template name
  acts as an implicit coordinate too, so two templates that reach the
  same experiment through different base fields never silently merge.

The merged result's metadata records the template names, the cell keys,
and each cell's coordinates, so an aggregated table is traceable back to
the exact store entries (and thus the exact specs) that produced it.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.harness import ExperimentResult
from repro.sweep.store import SweepStore
from repro.sweep.template import SweepCell
from repro.util.validation import ValidationError

#: Axes folded into the series instead of suffixing its label.
_JOINED_AXES = ("k_grid",)


def _suffix(cell: SweepCell, varying: Sequence[str]) -> str:
    coords = [
        f"{axis}={value}"
        for axis, value in (*cell.assignment, ("template", cell.template))
        if axis in varying
    ]
    return f" [{', '.join(coords)}]" if coords else ""


def aggregate_cells(
    cells: Sequence[SweepCell], store: SweepStore
) -> Dict[str, ExperimentResult]:
    """Merge stored results of ``cells``, one result per experiment group.

    Raises :class:`ValidationError` when any cell is missing from the
    store — aggregation is only meaningful over a completed sweep (run
    with ``--resume`` to fill the gaps first).
    """
    missing = [cell.key for cell in cells if not store.has(cell.key)]
    if missing:
        raise ValidationError(
            f"sweep store is missing {len(missing)} of {len(cells)} cells "
            f"(first missing key {missing[0]}); run the sweep (with --resume) "
            "before aggregating"
        )
    groups: Dict[str, List[SweepCell]] = {}
    for cell in cells:
        groups.setdefault(cell.spec.experiment, []).append(cell)

    merged: Dict[str, ExperimentResult] = {}
    for experiment, group in groups.items():
        seen_values: Dict[str, set] = {}
        for cell in group:
            for axis, value in (*cell.assignment, ("template", cell.template)):
                seen_values.setdefault(axis, set()).add(value)
        varying = [
            axis
            for axis, values in seen_values.items()
            if len(values) > 1 and axis not in _JOINED_AXES
        ]
        first = store.get(group[0].key)["result"]
        result = ExperimentResult(
            figure=first["figure"],
            description=first["description"],
            x_label=first["x_label"],
            y_label=first["y_label"],
        )
        for cell in group:
            data = store.get(cell.key)["result"]
            suffix = _suffix(cell, varying)
            for label, series in data["series"].items():
                target = result.series_for(f"{label}{suffix}")
                target.x.extend(float(x) for x in series["x"])
                target.y.extend(float(y) for y in series["y"])
        result.metadata["sweep"] = {
            "experiment": experiment,
            "templates": sorted({cell.template for cell in group}),
            "cells": [
                {"key": cell.key, "assignment": dict(cell.assignment)}
                for cell in group
            ],
        }
        merged[experiment] = result
    return merged
