"""Content-addressed on-disk store of finished sweep cells.

Every finished cell is one JSON file named by the cell's spec hash
(:func:`repro.sweep.template.spec_key`), holding the spec as provenance
next to the result::

    <root>/<key>.json = {"key": ..., "spec": {...}, "result": {...}}

Writes are atomic (temp file + ``os.replace``), so a sweep killed
mid-write never leaves a truncated cell behind — which is what makes
``--resume`` sound: a key either resolves to a complete result or is
re-executed.  Content addressing also makes the store worker-safe and
idempotent: re-running a cell overwrites it with identical bytes.
"""

from __future__ import annotations

import json
import os
import re
from typing import Dict, List, Optional

from repro.util.validation import ValidationError

_KEY_PATTERN = re.compile(r"^[0-9a-f]{32}$")

_TMP_PATTERN = re.compile(r"^\.([0-9a-f]{32})\.(\d+)\.tmp$")


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (conservatively True on EPERM)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        # The process exists but belongs to someone else.
        return True
    except OSError:
        return True
    return True


class SweepStore:
    """Directory of ``<spec-hash>.json`` cell files."""

    def __init__(self, root: str):
        # The directory is created lazily on first put(), so read-only
        # consumers (the --dry-run planner) leave no trace on disk.
        self.root = str(root)

    def path_for(self, key: str) -> str:
        """The cell file path for ``key``."""
        if not _KEY_PATTERN.match(key):
            raise ValidationError(f"malformed sweep store key {key!r}")
        return os.path.join(self.root, f"{key}.json")

    def has(self, key: str) -> bool:
        """Whether a completed cell with this key is stored."""
        return os.path.exists(self.path_for(key))

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The stored cell document, or None when absent."""
        path = self.path_for(key)
        try:
            with open(path) as handle:
                return json.load(handle)
        except FileNotFoundError:
            return None
        except json.JSONDecodeError as error:
            raise ValidationError(
                f"sweep store cell {path!r} is corrupt ({error}); delete it "
                "and re-run the sweep to regenerate the cell"
            ) from error

    def put(
        self,
        key: str,
        spec: Dict[str, object],
        result: Dict[str, object],
    ) -> str:
        """Atomically persist one finished cell; returns its path."""
        path = self.path_for(key)
        document = {"key": key, "spec": spec, "result": result}
        os.makedirs(self.root, exist_ok=True)
        tmp = os.path.join(self.root, f".{key}.{os.getpid()}.tmp")
        with open(tmp, "w") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
        os.replace(tmp, path)
        return path

    def purge_stale_tmp(self) -> List[str]:
        """Remove orphaned ``.<key>.<pid>.tmp`` files; returns their names.

        A sweep killed between opening a temp file and the atomic
        ``os.replace`` leaves the temp file behind forever.  Any temp
        file whose writer pid is no longer alive is such an orphan and is
        reclaimed here (sweep start calls this).  Temp files owned by a
        live pid — a concurrent sweep mid-write — and foreign files are
        left alone.
        """
        removed: List[str] = []
        if not os.path.isdir(self.root):
            return removed
        own_pid = os.getpid()
        for entry in os.listdir(self.root):
            match = _TMP_PATTERN.match(entry)
            if match is None:
                continue
            pid = int(match.group(2))
            if pid == own_pid or _pid_alive(pid):
                continue
            try:
                os.unlink(os.path.join(self.root, entry))
            except FileNotFoundError:
                continue
            removed.append(entry)
        return sorted(removed)

    def keys(self) -> List[str]:
        """Keys of every stored cell, sorted."""
        keys = []
        if not os.path.isdir(self.root):
            return keys
        for entry in os.listdir(self.root):
            name, ext = os.path.splitext(entry)
            if ext == ".json" and _KEY_PATTERN.match(name):
                keys.append(name)
        return sorted(keys)

    def __len__(self) -> int:
        return len(self.keys())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SweepStore(root={self.root!r}, cells={len(self)})"
