"""Content-addressed on-disk store of finished sweep cells.

Every finished cell is one JSON file named by the cell's spec hash
(:func:`repro.sweep.template.spec_key`), holding the spec as provenance
next to the result::

    <root>/<key>.json = {"key": ..., "spec": {...}, "result": {...}}

Writes are atomic (temp file + rename), so a sweep killed mid-write
never leaves a truncated cell behind — which is what makes ``--resume``
sound: a key either resolves to a complete result or is re-executed.
Content addressing also makes the store worker-safe and idempotent:
re-running a cell overwrites it with identical bytes.

All I/O flows through a pluggable :class:`~repro.sweep.dist.backend
.StoreBackend` (``local`` directory, or ``shared-fs`` for NFS-style
mounts — pass ``SweepStore("shared-fs:/mnt/sweeps/run1")``), which is
what lets N hosts share one store: together with the claim protocol in
:mod:`repro.sweep.dist.claims` the store becomes a coordinator-free
multi-host work queue.  Temp files are qualified by *host and pid*
(``.<key>.<host>.<pid>.tmp``) because a pid alone is meaningless on a
shared filesystem — host A's pid 4242 may be alive on host B.
"""

from __future__ import annotations

import json
import os
import re
from typing import Dict, List, Optional

from repro.sweep.dist.backend import StoreBackend, parse_backend
from repro.sweep.dist.claims import local_host
from repro.util.validation import ValidationError

_KEY_PATTERN = re.compile(r"^[0-9a-f]{32}$")

#: Host-and-pid-qualified temp names: ``.<key>.<host>.<pid>.tmp``.
_TMP_PATTERN = re.compile(r"^\.([0-9a-f]{32})\.([A-Za-z0-9_-]+)\.(\d+)\.tmp$")


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (conservatively True on EPERM)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        # The process exists but belongs to someone else.
        return True
    except OSError:
        return True
    return True


class SweepStore:
    """Directory of ``<spec-hash>.json`` cell files (on any backend)."""

    def __init__(self, root: str, backend: Optional[StoreBackend] = None):
        # The directory is created lazily on first put(), so read-only
        # consumers (the --dry-run planner) leave no trace on disk.
        self.backend = backend if backend is not None else parse_backend(str(root))
        self.root = self.backend.root

    def path_for(self, key: str) -> str:
        """The cell file path for ``key``."""
        if not _KEY_PATTERN.match(key):
            raise ValidationError(f"malformed sweep store key {key!r}")
        return self.backend.path(f"{key}.json")

    def has(self, key: str) -> bool:
        """Whether a completed cell with this key is stored."""
        return os.path.exists(self.path_for(key))

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The stored cell document, or None when absent."""
        path = self.path_for(key)
        text = self.backend.read_text(f"{key}.json")
        if text is None:
            return None
        try:
            return json.loads(text)
        except json.JSONDecodeError as error:
            raise ValidationError(
                f"sweep store cell {path!r} is corrupt ({error}); delete it "
                "and re-run the sweep to regenerate the cell"
            ) from error

    def put(
        self,
        key: str,
        spec: Dict[str, object],
        result: Dict[str, object],
    ) -> str:
        """Atomically persist one finished cell; returns its path."""
        path = self.path_for(key)
        document = {"key": key, "spec": spec, "result": result}
        text = json.dumps(document, indent=2) + "\n"
        tmp_rel = f".{key}.{local_host()}.{os.getpid()}.tmp"
        self.backend.write_atomic(f"{key}.json", text, tmp_rel)
        return path

    def purge_stale_tmp(self) -> List[str]:
        """Remove this host's orphaned temp files; returns their names.

        A sweep killed between opening a temp file and the atomic rename
        leaves ``.<key>.<host>.<pid>.tmp`` behind forever.  Only temp
        files whose recorded *host matches the local host* are liveness-
        checked and purged: on a shared filesystem a foreign host's pid
        cannot be probed locally (its live pid 4242 may look dead — or
        worse, alias an unrelated local process), so foreign temp files
        are always left for their own host's next sweep to reclaim.
        Temp files owned by a live local pid — a concurrent sweep
        mid-write — are left alone too.
        """
        removed: List[str] = []
        own_host = local_host()
        own_pid = os.getpid()
        for entry in self.backend.listdir():
            match = _TMP_PATTERN.match(entry)
            if match is None:
                continue
            host, pid = match.group(2), int(match.group(3))
            if host != own_host:
                continue
            if pid == own_pid or _pid_alive(pid):
                continue
            if self.backend.unlink(entry):
                removed.append(entry)
        return sorted(removed)

    def keys(self) -> List[str]:
        """Keys of every stored cell, sorted."""
        keys = []
        for entry in self.backend.listdir():
            name, ext = os.path.splitext(entry)
            if ext == ".json" and _KEY_PATTERN.match(name):
                keys.append(name)
        return sorted(keys)

    def __len__(self) -> int:
        return len(self.keys())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SweepStore(root={self.root!r}, cells={len(self)}, "
            f"backend={self.backend.name!r})"
        )
