"""Corpus progress from claim + result metadata: ``repro sweep --status``.

The status view is computed purely from the store directory — cell
files, claim files, done/failed markers — so it can be asked from any
host sharing the store, with no worker cooperation:

* **done** — the cell's result file exists;
* **claimed** — a claim with a live (unexpired) lease holds the cell;
* **orphaned** — a claim exists but its lease has expired: the owner
  died or stalled, and the next worker to scan will reclaim it;
* **failed** — a worker left a ``claims/<key>.failed`` record (with the
  traceback) and no result exists;
* **pending** — none of the above: unclaimed, waiting for a worker.

Per-host throughput comes from the ``claims/<key>.done`` completion
records each worker writes next to the result: cells per host, total
compute seconds, and the wall-clock span from the host's first claim to
its last completion.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.sweep.dist.claims import ClaimStore

if TYPE_CHECKING:  # imported lazily at run time to avoid a package cycle
    from repro.sweep.store import SweepStore
    from repro.sweep.template import SweepCell


@dataclass(frozen=True)
class CellStatus:
    """One cell's state in the corpus."""

    key: str
    state: str  # done | claimed | orphaned | failed | pending
    experiment: str
    coordinates: str
    #: ``host:pid`` of the claim/failure holder, when one exists.
    owner: Optional[str] = None
    #: Seconds until (claimed) or since (orphaned) lease expiry.
    lease_seconds: Optional[float] = None
    #: One-line error for failed cells.
    error: Optional[str] = None


@dataclass(frozen=True)
class HostThroughput:
    """Completion-record aggregate for one host."""

    host: str
    cells: int
    #: Summed per-cell execution seconds.
    elapsed: float
    #: Wall-clock span from first start to last finish on this host.
    span: float
    reclaimed: int

    @property
    def throughput(self) -> float:
        """Completed cells per wall-clock second (0 when span is 0)."""
        return self.cells / self.span if self.span > 0 else 0.0


@dataclass
class SweepStatus:
    """The whole corpus' progress snapshot."""

    total: int
    done: int = 0
    claimed: int = 0
    orphaned: int = 0
    failed: int = 0
    pending: int = 0
    cells: List[CellStatus] = field(default_factory=list)
    hosts: List[HostThroughput] = field(default_factory=list)
    #: Claim-protocol traffic per host: ``claims`` (completed + live),
    #: ``reclaims`` (taken over from an expired lease), ``defers``
    #: (currently-expired leases another worker will take over) — plus
    #: corpus-wide ``totals``.  Derived from done + claim records alone.
    telemetry: Dict[str, object] = field(default_factory=dict)

    def summary(self) -> str:
        """One machine-greppable line (the CI smoke asserts on it)."""
        return (
            f"SWEEP-STATUS total={self.total} done={self.done} "
            f"claimed={self.claimed} orphaned={self.orphaned} "
            f"failed={self.failed} pending={self.pending}"
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "total": self.total,
            "done": self.done,
            "claimed": self.claimed,
            "orphaned": self.orphaned,
            "failed": self.failed,
            "pending": self.pending,
            "cells": [
                {
                    "key": cell.key,
                    "state": cell.state,
                    "experiment": cell.experiment,
                    "coordinates": cell.coordinates,
                    "owner": cell.owner,
                    "lease_seconds": cell.lease_seconds,
                    "error": cell.error,
                }
                for cell in self.cells
            ],
            "hosts": [
                {
                    "host": host.host,
                    "cells": host.cells,
                    "elapsed": host.elapsed,
                    "span": host.span,
                    "reclaimed": host.reclaimed,
                    "throughput": host.throughput,
                }
                for host in self.hosts
            ],
            "telemetry": self.telemetry,
        }


def corpus_status(
    cells: "Sequence[SweepCell]",
    store: "SweepStore",
    *,
    now: Optional[float] = None,
) -> SweepStatus:
    """Classify every cell of the corpus against the store's records."""
    claims = ClaimStore(store.backend)
    moment = time.time() if now is None else now
    claim_records = claims.claim_records()
    failed_records = claims.failed_records()
    done_records = claims.done_records()

    status = SweepStatus(total=len(cells))
    for cell in cells:
        owner = None
        lease = None
        error = None
        if store.has(cell.key):
            state = "done"
            record = done_records.get(cell.key)
            if record is not None:
                owner = f"{record.get('host', '?')}:{record.get('pid', '?')}"
        elif cell.key in claim_records:
            claim = claim_records[cell.key]
            owner = claim.owner()
            lease = claim.lease_expiry - moment
            state = "claimed" if lease > 0 else "orphaned"
        elif cell.key in failed_records:
            record = failed_records[cell.key]
            state = "failed"
            owner = f"{record.get('host', '?')}:{record.get('pid', '?')}"
            error = str(record.get("error", ""))
        else:
            state = "pending"
        setattr(status, state, getattr(status, state) + 1)
        status.cells.append(
            CellStatus(
                key=cell.key,
                state=state,
                experiment=cell.spec.experiment,
                coordinates=cell.describe(),
                owner=owner,
                lease_seconds=lease,
                error=error,
            )
        )

    by_host: Dict[str, List[Dict[str, object]]] = {}
    for record in done_records.values():
        by_host.setdefault(str(record.get("host", "?")), []).append(record)
    for host in sorted(by_host):
        records = by_host[host]
        starts = [float(r.get("started", 0.0)) for r in records]
        finishes = [float(r.get("finished", 0.0)) for r in records]
        status.hosts.append(
            HostThroughput(
                host=host,
                cells=len(records),
                elapsed=sum(float(r.get("elapsed", 0.0)) for r in records),
                span=max(finishes) - min(starts) if records else 0.0,
                reclaimed=sum(1 for r in records if r.get("reclaimed")),
            )
        )

    # Claim-protocol traffic, from the same records the states came from:
    # a done record is a completed claim, a live claim file an in-flight
    # one, an expired claim a deferral waiting to be reclaimed.
    per_host: Dict[str, Dict[str, int]] = {}

    def bucket(host: str) -> Dict[str, int]:
        return per_host.setdefault(host, {"claims": 0, "reclaims": 0, "defers": 0})

    for record in done_records.values():
        counts = bucket(str(record.get("host", "?")))
        counts["claims"] += 1
        if record.get("reclaimed"):
            counts["reclaims"] += 1
    for claim in claim_records.values():
        counts = bucket(claim.host)
        counts["claims"] += 1
        if claim.reclaimed:
            counts["reclaims"] += 1
        if claim.lease_expiry <= moment:
            counts["defers"] += 1
    status.telemetry = {
        "hosts": {host: per_host[host] for host in sorted(per_host)},
        "totals": {
            field_name: sum(counts[field_name] for counts in per_host.values())
            for field_name in ("claims", "reclaims", "defers")
        },
    }
    return status


def format_status(status: SweepStatus, corpus: str, store_root: str) -> List[str]:
    """Human-readable status lines, ending with the greppable summary."""
    lines = [
        f"# sweep status {corpus}: {status.total} cells -> {store_root}",
    ]
    for cell in status.cells:
        detail = ""
        if cell.state == "claimed" and cell.lease_seconds is not None:
            detail = f" by {cell.owner} (lease expires in {cell.lease_seconds:.1f}s)"
        elif cell.state == "orphaned" and cell.lease_seconds is not None:
            detail = f" by {cell.owner} (lease expired {-cell.lease_seconds:.1f}s ago)"
        elif cell.state == "failed":
            detail = f" on {cell.owner}: {cell.error}"
        elif cell.state == "done" and cell.owner is not None:
            detail = f" by {cell.owner}"
        lines.append(
            f"{cell.key[:12]}  {cell.state:>8}  {cell.experiment}  "
            f"{cell.coordinates}{detail}"
        )
    for host in status.hosts:
        lines.append(
            f"# host {host.host}: cells={host.cells} "
            f"compute={host.elapsed:.1f}s span={host.span:.1f}s "
            f"rate={host.throughput:.2f} cells/s reclaimed={host.reclaimed}"
        )
    totals = status.telemetry.get("totals")
    if totals:
        lines.append(
            f"# claims: total={totals['claims']} "
            f"reclaimed={totals['reclaims']} deferred={totals['defers']}"
        )
    lines.append(status.summary())
    return lines
