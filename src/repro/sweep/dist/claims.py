"""Coordinator-free work claiming: atomic claim files with leases.

The protocol (``docs/sweep_distributed.md`` is the narrative version):

* To claim cell ``<key>``, a worker ``O_EXCL``-creates
  ``claims/<key>.claim`` containing ``{key, host, pid, started,
  lease_expiry, renewals}``.  Exactly one of any number of racing
  creators wins; the rest move on to other cells.
* While executing, the owner heartbeats: it atomically rewrites its
  claim with a pushed-out ``lease_expiry`` (every lease/4 seconds).  A
  renewal that finds the claim gone — or owned by someone else — means
  the lease was lost; the owner keeps running (results are write-once
  and byte-deterministic, so a double execution wastes time, never
  correctness) but stops renewing.
* Any worker may *reclaim* a claim whose lease has expired (the owner
  died, or is wedged past its lease): it atomically renames the expired
  claim to a private name, then ``O_EXCL``-creates a fresh claim.  Of N
  racing reclaimers exactly one wins the rename; a reclaimer racing a
  fresh claimer (who saw no file at all) is settled by the ``O_EXCL``
  create.  No step reads-modifies-writes in place, so there is no
  window in which two workers both believe they hold a live lease —
  up to clock skew between hosts, which the lease length must dominate
  (leases are wall-clock; keep them well above NTP-grade skew).
* On completion the owner writes ``claims/<key>.done`` (host, pid,
  started/finished timestamps — the per-host throughput record) and
  deletes its claim.  On a crash *inside the cell*, it writes
  ``claims/<key>.failed`` carrying the full traceback, so a remote
  worker's failure is debuggable from the store directory alone.

Everything is keyed by the store's content-addressed cell keys, so the
claim layer composes with ``--resume`` for free: a completed cell is
visible to every host as ``<key>.json``, and claims only ever gate the
cells still missing.
"""

from __future__ import annotations

import json
import os
import re
import socket
import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from repro.sweep.dist.backend import StoreBackend
from repro.util.validation import ValidationError

#: Default lease length (seconds).  Heartbeats renew at lease/4, so a
#: worker must be wedged for a full lease before its cell is up for
#: reclamation; cells typically run seconds-to-minutes, making 60 s a
#: safe floor that still reclaims a dead host's cells quickly.
DEFAULT_LEASE_SECONDS = 60.0

CLAIMS_DIR = "claims"

_HOST_SANITIZER = re.compile(r"[^A-Za-z0-9_-]")


def local_host() -> str:
    """This host's name, sanitized for embedding in file names.

    Dots and other separators become ``-`` so host names never collide
    with the ``.``-delimited fields of temp/claim file names.
    """
    return _HOST_SANITIZER.sub("-", socket.gethostname()) or "unknown-host"


@dataclass(frozen=True)
class ClaimRecord:
    """One claim file's contents: who holds the cell, until when."""

    key: str
    host: str
    pid: int
    started: float
    lease_expiry: float
    renewals: int = 0
    #: True when this claim was taken over from an expired one.
    reclaimed: bool = False

    def owner(self) -> str:
        """Display identity of the claim holder."""
        return f"{self.host}:{self.pid}"

    def to_json(self) -> str:
        return json.dumps(
            {
                "key": self.key,
                "host": self.host,
                "pid": self.pid,
                "started": self.started,
                "lease_expiry": self.lease_expiry,
                "renewals": self.renewals,
                "reclaimed": self.reclaimed,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "ClaimRecord":
        data = json.loads(text)
        return cls(
            key=str(data["key"]),
            host=str(data["host"]),
            pid=int(data["pid"]),
            started=float(data["started"]),
            lease_expiry=float(data["lease_expiry"]),
            renewals=int(data.get("renewals", 0)),
            reclaimed=bool(data.get("reclaimed", False)),
        )


class ClaimLost(RuntimeError):
    """Raised by :meth:`ClaimStore.renew` when the lease is no longer ours."""


class ClaimStore:
    """Claim, heartbeat, and completion records under ``<root>/claims/``."""

    def __init__(
        self,
        backend: StoreBackend,
        *,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        host: Optional[str] = None,
        pid: Optional[int] = None,
        clock=time.time,
    ):
        if lease_seconds <= 0:
            raise ValidationError(f"lease_seconds must be > 0, got {lease_seconds}")
        self.backend = backend
        self.lease_seconds = float(lease_seconds)
        self.host = host if host is not None else local_host()
        self.pid = int(pid) if pid is not None else os.getpid()
        self.clock = clock

    # ------------------------------------------------------------------ #
    # Relative paths
    # ------------------------------------------------------------------ #
    def claim_rel(self, key: str) -> str:
        return f"{CLAIMS_DIR}/{key}.claim"

    def done_rel(self, key: str) -> str:
        return f"{CLAIMS_DIR}/{key}.done"

    def failed_rel(self, key: str) -> str:
        return f"{CLAIMS_DIR}/{key}.failed"

    # ------------------------------------------------------------------ #
    # The claim protocol
    # ------------------------------------------------------------------ #
    def read(self, key: str) -> Optional[ClaimRecord]:
        """The current claim on ``key``, or None when unclaimed.

        A claim file that does not parse (a torn write on a misbehaving
        mount — atomic writes should make this impossible) is treated as
        expired-at-epoch, so it is reclaimable rather than wedging the
        cell forever.
        """
        return self._parse(key, self.backend.read_text(self.claim_rel(key)))

    @staticmethod
    def _parse(key: str, text: Optional[str]) -> Optional[ClaimRecord]:
        if text is None:
            return None
        try:
            return ClaimRecord.from_json(text)
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            return ClaimRecord(
                key=key, host="corrupt", pid=0, started=0.0, lease_expiry=0.0
            )

    def expired(self, record: ClaimRecord, now: Optional[float] = None) -> bool:
        """Whether the claim's lease has lapsed."""
        return (self.clock() if now is None else now) >= record.lease_expiry

    def try_claim(self, key: str) -> Optional[ClaimRecord]:
        """Attempt to claim ``key``; None when a live claim holds it.

        An expired claim is taken over: the stale file is atomically
        renamed to a private name (of N racing reclaimers exactly one
        wins the rename), then a fresh claim is created the normal way.
        """
        now = self.clock()
        record = ClaimRecord(
            key=key,
            host=self.host,
            pid=self.pid,
            started=now,
            lease_expiry=now + self.lease_seconds,
        )
        if self.backend.create_exclusive(self.claim_rel(key), record.to_json()):
            return record
        existing = self.read(key)
        if existing is None:
            # Released between our create and read; retry the create once.
            if self.backend.create_exclusive(self.claim_rel(key), record.to_json()):
                return record
            return None
        if not self.expired(existing, now):
            return None
        takeover_rel = f"{CLAIMS_DIR}/.{key}.{self.host}.{self.pid}.takeover"
        if not self.backend.rename(self.claim_rel(key), takeover_rel):
            return None  # another reclaimer won the rename
        stolen_text = self.backend.read_text(takeover_rel)
        if self._parse(key, stolen_text) != existing:
            # ABA: between our read and rename another reclaimer took the
            # slot and a *live* claim replaced the expired one — we just
            # renamed away someone's active lease.  Hand it back (unless a
            # third claimer already refilled the slot, in which case the
            # stolen owner notices at its next renew and keeps running;
            # write-once determinism makes the double execution harmless).
            if stolen_text is not None:
                self.backend.create_exclusive(self.claim_rel(key), stolen_text)
            self.backend.unlink(takeover_rel)
            return None
        self.backend.unlink(takeover_rel)
        record = replace(record, reclaimed=True)
        if self.backend.create_exclusive(self.claim_rel(key), record.to_json()):
            return record
        return None  # a fresh claimer slipped in after our rename

    def renew(self, record: ClaimRecord) -> ClaimRecord:
        """Push the lease out; raises :class:`ClaimLost` when not ours.

        The rewrite is atomic (temp + rename) so readers on other hosts
        never observe a torn claim.
        """
        current = self.read(record.key)
        if current is None or current.host != record.host or current.pid != record.pid:
            raise ClaimLost(
                f"claim on {record.key} is no longer held by {record.owner()} "
                f"(now: {current.owner() if current else 'unclaimed'})"
            )
        renewed = replace(
            record,
            lease_expiry=self.clock() + self.lease_seconds,
            renewals=record.renewals + 1,
        )
        tmp_rel = f"{CLAIMS_DIR}/.{record.key}.{self.host}.{self.pid}.renew.tmp"
        self.backend.write_atomic(self.claim_rel(record.key), renewed.to_json(), tmp_rel)
        return renewed

    def release(self, record: ClaimRecord) -> None:
        """Drop our claim (after the result — or failure record — landed).

        Only releases a claim we still hold: if the lease was reclaimed
        while we ran, the new owner's claim is left untouched.
        """
        current = self.read(record.key)
        if current is not None and (
            current.host == record.host and current.pid == record.pid
        ):
            self.backend.unlink(self.claim_rel(record.key))

    # ------------------------------------------------------------------ #
    # Completion and failure records
    # ------------------------------------------------------------------ #
    def mark_done(
        self,
        key: str,
        *,
        started: float,
        finished: float,
        experiment: str = "",
        reclaimed: bool = False,
    ) -> None:
        """Persist the per-host completion record for ``key``."""
        document = {
            "key": key,
            "host": self.host,
            "pid": self.pid,
            "started": started,
            "finished": finished,
            "elapsed": max(0.0, finished - started),
            "experiment": experiment,
            "reclaimed": reclaimed,
        }
        tmp_rel = f"{CLAIMS_DIR}/.{key}.{self.host}.{self.pid}.done.tmp"
        self.backend.write_atomic(self.done_rel(key), json.dumps(document, sort_keys=True), tmp_rel)

    def mark_failed(self, key: str, *, error: str, traceback_text: str) -> None:
        """Persist a failure record (with the full traceback) for ``key``."""
        document = {
            "key": key,
            "host": self.host,
            "pid": self.pid,
            "time": self.clock(),
            "error": error,
            "traceback": traceback_text,
        }
        tmp_rel = f"{CLAIMS_DIR}/.{key}.{self.host}.{self.pid}.failed.tmp"
        self.backend.write_atomic(
            self.failed_rel(key), json.dumps(document, sort_keys=True), tmp_rel
        )

    def clear_failed(self, key: str) -> bool:
        """Remove a failure record (a fresh attempt is about to run)."""
        return self.backend.unlink(self.failed_rel(key))

    def done_record(self, key: str) -> Optional[Dict[str, object]]:
        return self._read_json(self.done_rel(key))

    def failed_record(self, key: str) -> Optional[Dict[str, object]]:
        return self._read_json(self.failed_rel(key))

    def _read_json(self, rel: str) -> Optional[Dict[str, object]]:
        text = self.backend.read_text(rel)
        if text is None:
            return None
        try:
            return json.loads(text)
        except json.JSONDecodeError:
            return None

    # ------------------------------------------------------------------ #
    # Listings (the status layer's raw material)
    # ------------------------------------------------------------------ #
    def _keys_with_suffix(self, suffix: str) -> List[str]:
        keys = []
        for entry in self.backend.listdir(CLAIMS_DIR):
            if entry.startswith("."):
                continue
            if entry.endswith(suffix):
                keys.append(entry[: -len(suffix)])
        return keys

    def claim_records(self) -> Dict[str, ClaimRecord]:
        """Every current claim, keyed by cell key."""
        records = {}
        for key in self._keys_with_suffix(".claim"):
            record = self.read(key)
            if record is not None:
                records[key] = record
        return records

    def done_records(self) -> Dict[str, Dict[str, object]]:
        """Every completion record, keyed by cell key."""
        records = {}
        for key in self._keys_with_suffix(".done"):
            record = self.done_record(key)
            if record is not None:
                records[key] = record
        return records

    def failed_records(self) -> Dict[str, Dict[str, object]]:
        """Every failure record, keyed by cell key."""
        records = {}
        for key in self._keys_with_suffix(".failed"):
            record = self.failed_record(key)
            if record is not None:
                records[key] = record
        return records
