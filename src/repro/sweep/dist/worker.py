"""Claim-driven cell execution: the drain loop behind ``sweep-worker``.

:func:`execute_cell_claimed` is the one code path that runs a sweep cell
under the claim protocol — claim, heartbeat, execute, persist, mark
done/failed, release — and it is shared by *both* execution surfaces:

* ``repro sweep-worker`` runs :func:`run_worker`, an in-process loop
  that drains unclaimed cells until the whole corpus is done (waiting
  out, and eventually reclaiming, other workers' leases);
* ``repro sweep --workers N`` dispatches the same function inside its
  ``multiprocessing`` pool, making the local pool one more backend of
  the same protocol — a pool worker and a remote host contend for cells
  with identical semantics, so both can safely share one store.

Because results are write-once and byte-deterministic per cell, every
race in the protocol degrades to wasted work, never wrong bytes: the
worst case is two workers computing the same cell and overwriting the
file with identical content.
"""

from __future__ import annotations

import hashlib
import signal as signal_module
import threading
import time
import traceback as traceback_module
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

from repro.sweep.dist.claims import (
    DEFAULT_LEASE_SECONDS,
    ClaimLost,
    ClaimRecord,
    ClaimStore,
)
from repro.telemetry import runtime as telemetry
from repro.util.validation import ValidationError

if TYPE_CHECKING:  # imported lazily at run time to avoid a package cycle
    from repro.sweep.store import SweepStore
    from repro.sweep.template import SweepCell


class WorkerInterrupted(BaseException):
    """SIGTERM/SIGINT arrived: unwind the drain loop, releasing claims.

    Deliberately a ``BaseException``: the per-cell ``except Exception``
    in :func:`execute_cell_claimed` must *not* catch it (an interrupted
    cell is unfinished, not failed — another worker should claim it),
    while the ``finally: claims.release(claim)`` still runs, so the
    interrupted worker's live claim is released immediately instead of
    squatting until the lease expires.
    """

    def __init__(self, signum: int):
        super().__init__(f"interrupted by signal {signum}")
        self.signum = int(signum)


@dataclass(frozen=True)
class CellFailure:
    """One cell whose run raised: key, one-line error, full traceback."""

    key: str
    error: str
    traceback: str

    def as_dict(self) -> Dict[str, str]:
        return {"key": self.key, "error": self.error, "traceback": self.traceback}


class _Heartbeat:
    """Background lease renewal while a cell executes.

    Renews at lease/4 so a healthy worker is never within three missed
    beats of expiry.  A renewal that finds the claim lost (reclaimed
    after a long stall) flips ``lost`` and stops beating; the execution
    keeps going — the write-once store makes the duplicate harmless.
    """

    def __init__(self, claims: ClaimStore, record: ClaimRecord):
        self.claims = claims
        self.record = record
        self.lost = False
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        interval = max(self.claims.lease_seconds / 4.0, 0.05)
        while not self._stop.wait(interval):
            try:
                self.record = self.claims.renew(self.record)
            except ClaimLost:
                self.lost = True
                return
            except OSError:  # pragma: no cover - transient mount hiccup
                continue

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join()


def execute_cell_claimed(
    key: str,
    spec_dict: Dict[str, object],
    *,
    store_spec: str,
    batched: bool = True,
    lease_seconds: float = DEFAULT_LEASE_SECONDS,
    skip_done: bool = False,
    clear_failed: bool = True,
) -> Dict[str, object]:
    """Run one cell under the claim protocol; returns an outcome record.

    Outcome ``status`` is one of:

    * ``"done"`` — claimed, executed, result stored, completion marked;
    * ``"failed"`` — claimed and executed but the run raised; the error
      and full traceback are in the outcome *and* persisted as
      ``claims/<key>.failed`` so the failure is debuggable from the
      store alone;
    * ``"claimed"`` — another worker holds a live lease; nothing ran;
    * ``"already-done"`` — ``skip_done`` and the result appeared (either
      before claiming or while racing for the claim).

    ``clear_failed`` removes a stale failure record before a fresh
    attempt (``repro sweep`` re-attempts failed cells; the cooperative
    ``sweep-worker`` loop leaves them to be skipped instead).
    """
    from repro.sweep.store import SweepStore

    store = SweepStore(store_spec)
    claims = ClaimStore(store.backend, lease_seconds=lease_seconds)
    outcome: Dict[str, object] = {
        "key": key,
        "host": claims.host,
        "pid": claims.pid,
        "reclaimed": False,
    }
    if skip_done and store.has(key):
        outcome["status"] = "already-done"
        return outcome
    claim = claims.try_claim(key)
    if claim is None:
        holder = claims.read(key)
        outcome["status"] = "claimed"
        outcome["owner"] = holder.owner() if holder is not None else "unknown"
        return outcome
    outcome["reclaimed"] = claim.reclaimed
    try:
        if skip_done and store.has(key):
            outcome["status"] = "already-done"
            return outcome
        if clear_failed:
            claims.clear_failed(key)
        # Imported here so the module stays importable before fork and
        # the heavy scenario stack loads once per worker process.
        from repro.scenario.session import SimulationSession
        from repro.scenario.spec import ScenarioSpec

        with _Heartbeat(claims, claim) as heartbeat:
            try:
                spec = ScenarioSpec.from_dict(spec_dict)
                result = SimulationSession(spec, batched=batched).run()
            except Exception as error:  # noqa: BLE001 - contained per cell by design
                message = f"{type(error).__name__}: {error}"
                trace = traceback_module.format_exc()
                claims.mark_failed(key, error=message, traceback_text=trace)
                outcome.update(status="failed", error=message, traceback=trace)
                return outcome
        store.put(key, spec_dict, result.as_dict())
        finished = claims.clock()
        claims.mark_done(
            key,
            started=claim.started,
            finished=finished,
            experiment=str(spec_dict.get("experiment", "")),
            reclaimed=claim.reclaimed,
        )
        outcome.update(
            status="done",
            elapsed=max(0.0, finished - claim.started),
            lost_lease=heartbeat.lost,
        )
        return outcome
    finally:
        claims.release(claim)


@dataclass
class WorkerReport:
    """What one :func:`run_worker` drain loop did (and observed)."""

    host: str
    pid: int
    total: int
    #: Keys this worker executed successfully.
    executed: List[str] = field(default_factory=list)
    #: Keys found (or observed becoming) complete without running here.
    skipped_done: List[str] = field(default_factory=list)
    #: Keys skipped because another worker left a failure record.
    skipped_failed: List[str] = field(default_factory=list)
    #: Cells this worker ran that raised (with tracebacks).
    failed: List[CellFailure] = field(default_factory=list)
    #: Keys whose expired claim this worker took over.
    reclaimed: List[str] = field(default_factory=list)
    #: Keys still neither done nor failed when the loop exited.
    pending: List[str] = field(default_factory=list)
    #: Rounds spent waiting on other workers' live leases.
    waited_rounds: int = 0
    timed_out: bool = False
    #: Signal number that interrupted the drain loop (None = ran to term).
    interrupted: Optional[int] = None

    def failed_total(self) -> int:
        """Corpus-wide failure count: own failures plus observed records."""
        return len(self.failed) + len(self.skipped_failed)

    def summary(self) -> str:
        """One machine-greppable line, same shape as ``SWEEP`` summaries."""
        line = (
            f"SWEEP total={self.total} executed={len(self.executed)} "
            f"skipped={len(self.skipped_done) + len(self.skipped_failed)} "
            f"failed={self.failed_total()}"
        )
        if self.pending:
            line += f" pending={len(self.pending)}"
        if self.interrupted is not None:
            line += f" interrupted=sig{self.interrupted}"
        return f"{line} workers=1 host={self.host} pid={self.pid}"


def _rotated(cells: "Sequence[SweepCell]", host: str, pid: int) -> "List[SweepCell]":
    """The cell list rotated by a per-worker offset.

    Workers starting simultaneously would otherwise all race for cell 0,
    lose N-1 claims, race for cell 1, ... — a deterministic per-worker
    starting point spreads them across the corpus.  (Purely an
    efficiency knob: claim contention is safe, just wasteful.)
    """
    if not cells:
        return []
    seed = hashlib.blake2b(f"{host}:{pid}".encode(), digest_size=4).digest()
    offset = int.from_bytes(seed, "big") % len(cells)
    return list(cells[offset:]) + list(cells[:offset])


def install_interrupt_handlers() -> Dict[int, object]:
    """Make SIGTERM/SIGINT raise :class:`WorkerInterrupted` (main thread).

    Returns the previous handlers so the caller can restore them; a
    no-op (empty dict) off the main thread, where CPython forbids
    ``signal.signal``.
    """
    if threading.current_thread() is not threading.main_thread():
        return {}

    def _raise(signum, _frame):
        raise WorkerInterrupted(signum)

    previous: Dict[int, object] = {}
    for signum in (signal_module.SIGTERM, signal_module.SIGINT):
        previous[signum] = signal_module.signal(signum, _raise)
    return previous


def restore_interrupt_handlers(previous: Dict[int, object]) -> None:
    """Undo :func:`install_interrupt_handlers`."""
    for signum, handler in previous.items():
        signal_module.signal(signum, handler)


def run_worker(
    cells: "Sequence[SweepCell]",
    store: "SweepStore",
    *,
    lease_seconds: float = DEFAULT_LEASE_SECONDS,
    poll_seconds: float = 0.5,
    batched: bool = True,
    max_cells: Optional[int] = None,
    retry_failed: bool = False,
    wait_timeout: Optional[float] = None,
    on_event: Optional[Callable[[str, SweepCell, Dict[str, object]], None]] = None,
    handle_signals: bool = False,
) -> WorkerReport:
    """Drain ``cells`` into ``store`` cooperatively until the corpus is done.

    The loop repeatedly scans the corpus (from a per-worker rotation
    point), claims and executes any cell that is neither complete, nor
    failure-marked, nor held by a live lease.  When every remaining cell
    is claimed elsewhere, it sleeps ``poll_seconds`` and rescans — so it
    naturally waits out other workers and reclaims their cells if their
    leases expire.  It returns when every cell is accounted for
    (done or failed), when ``max_cells`` own executions are reached, or
    when ``wait_timeout`` seconds pass without the corpus completing.

    ``retry_failed`` re-attempts cells that carry a failure record
    (clearing the record first); by default they are skipped, so a crash
    loop cannot bounce between workers forever.

    ``on_event(kind, cell, outcome)`` observes progress; kinds are
    ``done`` / ``failed`` / ``skipped-done`` / ``skipped-failed`` /
    ``waiting``.

    ``handle_signals`` (the CLI's mode; needs the main thread) converts
    SIGTERM/SIGINT into a clean unwind: the in-flight cell's claim is
    released immediately — not left to squat until its lease expires —
    the cell stays unaccounted for another worker, and the report comes
    back with :attr:`WorkerReport.interrupted` set instead of the
    process dying mid-claim.
    """
    if poll_seconds <= 0:
        raise ValidationError(f"poll_seconds must be > 0, got {poll_seconds}")
    claims = ClaimStore(store.backend, lease_seconds=lease_seconds)
    report = WorkerReport(host=claims.host, pid=claims.pid, total=len(cells))
    ordered = _rotated(cells, claims.host, claims.pid)
    accounted: set = set()
    deadline = None if wait_timeout is None else time.monotonic() + wait_timeout
    previous_handlers = install_interrupt_handlers() if handle_signals else {}

    def emit(kind: str, cell: SweepCell, outcome: Dict[str, object]) -> None:
        if on_event is not None:
            on_event(kind, cell, outcome)

    try:
        with telemetry.span("worker.run", cells=len(cells), host=claims.host):
            _drain(
                cells,
                ordered,
                store,
                claims,
                report,
                accounted,
                emit,
                lease_seconds=lease_seconds,
                poll_seconds=poll_seconds,
                batched=batched,
                max_cells=max_cells,
                retry_failed=retry_failed,
                deadline=deadline,
            )
    except WorkerInterrupted as interrupt:
        report.interrupted = interrupt.signum
        report.pending = [cell.key for cell in cells if cell.key not in accounted]
        telemetry.count("worker.interrupted")
    finally:
        restore_interrupt_handlers(previous_handlers)
    return report


def _drain(
    cells: "Sequence[SweepCell]",
    ordered: "List[SweepCell]",
    store: "SweepStore",
    claims: ClaimStore,
    report: WorkerReport,
    accounted: set,
    emit: Callable[[str, "SweepCell", Dict[str, object]], None],
    *,
    lease_seconds: float,
    poll_seconds: float,
    batched: bool,
    max_cells: Optional[int],
    retry_failed: bool,
    deadline: Optional[float],
) -> None:
    """The scan-claim-execute rounds of :func:`run_worker`."""
    while True:
        progressed = False
        for cell in ordered:
            if cell.key in accounted:
                continue
            if max_cells is not None and len(report.executed) >= max_cells:
                break
            if store.has(cell.key):
                accounted.add(cell.key)
                report.skipped_done.append(cell.key)
                telemetry.count("worker.cells.skipped")
                emit("skipped-done", cell, {})
                progressed = True
                continue
            if not retry_failed and claims.failed_record(cell.key) is not None:
                accounted.add(cell.key)
                report.skipped_failed.append(cell.key)
                telemetry.count("worker.cells.skipped")
                emit("skipped-failed", cell, claims.failed_record(cell.key) or {})
                progressed = True
                continue
            outcome = execute_cell_claimed(
                cell.key,
                cell.spec.to_dict(),
                store_spec=store.backend.describe(),
                batched=batched,
                lease_seconds=lease_seconds,
                skip_done=True,
                clear_failed=retry_failed,
            )
            status = outcome["status"]
            if status == "done":
                accounted.add(cell.key)
                report.executed.append(cell.key)
                telemetry.count("worker.cells.done")
                telemetry.record_span(
                    "worker.cell",
                    float(outcome.get("elapsed", 0.0)),
                    key=cell.key,
                    reclaimed=bool(outcome.get("reclaimed", False)),
                )
                if outcome.get("reclaimed"):
                    report.reclaimed.append(cell.key)
                    telemetry.count("worker.cells.reclaimed")
                emit("done", cell, outcome)
                progressed = True
            elif status == "already-done":
                accounted.add(cell.key)
                report.skipped_done.append(cell.key)
                telemetry.count("worker.cells.skipped")
                emit("skipped-done", cell, outcome)
                progressed = True
            elif status == "failed":
                accounted.add(cell.key)
                report.failed.append(
                    CellFailure(
                        key=cell.key,
                        error=str(outcome.get("error", "")),
                        traceback=str(outcome.get("traceback", "")),
                    )
                )
                telemetry.count("worker.cells.failed")
                emit("failed", cell, outcome)
                progressed = True
            else:  # "claimed": leave unaccounted; a later round re-checks.
                telemetry.count("worker.cells.deferred")

        pending = [cell.key for cell in cells if cell.key not in accounted]
        if max_cells is not None and len(report.executed) >= max_cells:
            report.pending = pending
            break
        if not pending:
            report.pending = []
            break
        if not progressed:
            if deadline is not None and time.monotonic() >= deadline:
                report.pending = pending
                report.timed_out = True
                break
            report.waited_rounds += 1
            for cell in cells:
                if cell.key in pending[:1]:
                    emit("waiting", cell, {"pending": len(pending)})
            time.sleep(poll_seconds)
