"""Distributed sweep execution: N hosts drain one store, no coordinator.

The single-host sweep (PR 4) already had the hard part of a distributed
runner: a content-addressed, write-once, atomically-written
:class:`~repro.sweep.store.SweepStore` whose cells are byte-deterministic
pure functions of their specs.  This package adds the remaining three
pieces:

* :mod:`repro.sweep.dist.backend` — a pluggable :class:`StoreBackend`
  (``local`` directory, ``shared-fs`` for NFS-style mounts with
  fsync-on-commit) behind the store and the claim files;
* :mod:`repro.sweep.dist.claims` — the coordinator-free work-claiming
  protocol: ``O_EXCL`` claim files carrying ``{host, pid, started,
  lease_expiry}``, heartbeat renewal, and rename-based reclamation of
  expired leases, plus done/failed side records (the failure record
  carries the full traceback);
* :mod:`repro.sweep.dist.worker` / :mod:`repro.sweep.dist.status` — the
  ``repro sweep-worker`` drain loop and the ``repro sweep --status``
  progress view (done/claimed/orphaned/failed/pending, per-host
  throughput).

Point any number of ``repro sweep-worker TEMPLATE --store DIR``
processes — across any number of hosts sharing ``DIR`` — at one corpus
and they drain it together; ``--resume`` semantics come for free from
the content-addressed store.
"""

from repro.sweep.dist.backend import (
    BACKENDS,
    LocalBackend,
    SharedFSBackend,
    StoreBackend,
    parse_backend,
)
from repro.sweep.dist.claims import (
    DEFAULT_LEASE_SECONDS,
    ClaimLost,
    ClaimRecord,
    ClaimStore,
    local_host,
)
from repro.sweep.dist.status import (
    CellStatus,
    HostThroughput,
    SweepStatus,
    corpus_status,
    format_status,
)
from repro.sweep.dist.worker import (
    CellFailure,
    WorkerInterrupted,
    WorkerReport,
    execute_cell_claimed,
    run_worker,
)

__all__ = [
    "BACKENDS",
    "CellFailure",
    "CellStatus",
    "ClaimLost",
    "ClaimRecord",
    "ClaimStore",
    "DEFAULT_LEASE_SECONDS",
    "HostThroughput",
    "LocalBackend",
    "SharedFSBackend",
    "StoreBackend",
    "SweepStatus",
    "WorkerInterrupted",
    "WorkerReport",
    "corpus_status",
    "execute_cell_claimed",
    "format_status",
    "local_host",
    "parse_backend",
    "run_worker",
]
