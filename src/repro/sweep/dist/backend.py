"""Pluggable filesystem backends behind the sweep store and claims.

A :class:`StoreBackend` is the narrow I/O surface the distributed sweep
layer needs — atomic writes, exclusive creates, renames, listings — over
*relative* paths inside one store root.  Two backends ship today:

* ``local`` — a plain directory on a local filesystem (the default, and
  exactly what the single-host sweep has always used);
* ``shared-fs`` — the same directory layout on an NFS-style shared
  mount.  It adds ``fsync`` of both the file and its directory around
  every atomic write and exclusive create, so a cell (or claim) another
  host observes is durably the bytes that were written, not a
  client-cache mirage (the S-Bus stale-read hazards).  It assumes the
  mount supports atomic ``O_CREAT|O_EXCL`` (NFSv4, or v3 with working
  exclusive-create emulation) and atomic same-directory ``rename``.

Backends are named in store specs: ``--store shared-fs:/mnt/sweeps/run1``
selects the shared-fs backend; a bare path (or ``local:PATH``) selects
the local one.  Every mutation the claim protocol relies on maps to a
single POSIX operation (``O_EXCL`` create, ``rename``, ``unlink``), so
correctness never depends on read-modify-write cycles being atomic.
"""

from __future__ import annotations

import itertools
import os
from typing import Dict, List, Optional, Type

from repro.util.validation import ValidationError

#: Per-process sequence making exclusive-create temp names unique even
#: across threads racing on the same target (itertools.count is atomic
#: under the GIL).
_CREATE_SEQ = itertools.count()


class StoreBackend:
    """Filesystem primitives over relative paths inside one store root."""

    #: Registry name; also the prefix accepted by :func:`parse_backend`.
    name = "local"

    def __init__(self, root: str):
        self.root = str(root)

    # ------------------------------------------------------------------ #
    # Paths and listings
    # ------------------------------------------------------------------ #
    def path(self, rel: str) -> str:
        """Absolute path of ``rel`` inside the store root."""
        return os.path.join(self.root, rel)

    def makedirs(self, rel_dir: str = "") -> None:
        """Ensure ``rel_dir`` (the root itself by default) exists."""
        os.makedirs(self.path(rel_dir) if rel_dir else self.root, exist_ok=True)

    def exists(self, rel: str) -> bool:
        return os.path.exists(self.path(rel))

    def listdir(self, rel_dir: str = "") -> List[str]:
        """Entries of ``rel_dir``, sorted; empty when the dir is absent."""
        try:
            return sorted(os.listdir(self.path(rel_dir) if rel_dir else self.root))
        except FileNotFoundError:
            return []

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #
    def read_text(self, rel: str) -> Optional[str]:
        """The file's text, or None when it does not exist."""
        try:
            with open(self.path(rel)) as handle:
                return handle.read()
        except FileNotFoundError:
            return None

    # ------------------------------------------------------------------ #
    # Writes (each a single atomic POSIX operation at the commit point)
    # ------------------------------------------------------------------ #
    def write_atomic(self, rel: str, text: str, tmp_rel: str) -> None:
        """Write ``text`` to ``tmp_rel`` and atomically rename onto ``rel``.

        ``tmp_rel`` must live in the same directory as ``rel`` (the
        caller names it — the store's host-qualified temp scheme), so the
        rename never crosses filesystems.
        """
        tmp = self.path(tmp_rel)
        os.makedirs(os.path.dirname(tmp) or self.root, exist_ok=True)
        with open(tmp, "w") as handle:
            handle.write(text)
            self._sync_handle(handle)
        os.replace(tmp, self.path(rel))
        self._sync_dir(os.path.dirname(self.path(rel)))

    def create_exclusive(self, rel: str, text: str) -> bool:
        """Atomically create ``rel`` with ``text``; False when it exists.

        This is the claim-protocol primitive: exactly one of any number
        of concurrent creators wins.  The content is written to a
        private temp file first and committed with :func:`os.link`, so
        the file appears *with its full content* in one atomic step — a
        reader can never observe a created-but-empty claim.  (Hard-link
        creation also fails over NFS when the target exists, which is
        why it is the classic portable exclusive-create.)
        """
        path = self.path(rel)
        directory = os.path.dirname(path) or self.root
        os.makedirs(directory, exist_ok=True)
        tmp = os.path.join(
            directory,
            f".{os.path.basename(path)}.{os.getpid()}.{next(_CREATE_SEQ)}.create",
        )
        fd = os.open(tmp, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            self._sync_handle(handle)
        try:
            os.link(tmp, path)
        except FileExistsError:
            return False
        finally:
            os.unlink(tmp)
        self._sync_dir(directory)
        return True

    def rename(self, src_rel: str, dst_rel: str) -> bool:
        """Atomically rename ``src_rel`` to ``dst_rel``; False when gone.

        Used for claim takeover: of N workers racing to rename one
        expired claim to their own unique name, exactly one succeeds and
        the rest see ``FileNotFoundError``.
        """
        try:
            os.rename(self.path(src_rel), self.path(dst_rel))
        except FileNotFoundError:
            return False
        self._sync_dir(os.path.dirname(self.path(dst_rel)))
        return True

    def unlink(self, rel: str) -> bool:
        """Remove ``rel``; False when it was already gone."""
        try:
            os.unlink(self.path(rel))
        except FileNotFoundError:
            return False
        return True

    # ------------------------------------------------------------------ #
    # Durability hooks (no-ops locally; shared-fs overrides)
    # ------------------------------------------------------------------ #
    def _sync_handle(self, handle) -> None:  # pragma: no cover - hook
        pass

    def _sync_dir(self, path: str) -> None:  # pragma: no cover - hook
        pass

    def describe(self) -> str:
        """The spec string that reproduces this backend."""
        return f"{self.name}:{self.root}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(root={self.root!r})"


class LocalBackend(StoreBackend):
    """A plain local directory — the single-host default."""

    name = "local"


class SharedFSBackend(StoreBackend):
    """An NFS-style shared mount: fsync data and directories on commit.

    Close-to-open consistency means a plain ``write`` may sit in the
    client cache while another host lists the directory; fsyncing the
    file before the rename and the directory after it makes every commit
    point (cell write, claim create, takeover rename) durably visible
    before the operation returns.
    """

    name = "shared-fs"

    def _sync_handle(self, handle) -> None:
        handle.flush()
        os.fsync(handle.fileno())

    def _sync_dir(self, path: str) -> None:
        try:
            fd = os.open(path or ".", os.O_RDONLY)
        except OSError:  # pragma: no cover - transient mount hiccup
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)


BACKENDS: Dict[str, Type[StoreBackend]] = {
    LocalBackend.name: LocalBackend,
    SharedFSBackend.name: SharedFSBackend,
}


def parse_backend(spec: str) -> StoreBackend:
    """Build a backend from a store spec string.

    ``"shared-fs:/mnt/sweeps/run1"`` selects a registered backend by its
    prefix; anything without a registered prefix — including bare paths
    and relative paths with no colon — is a local directory.
    """
    text = str(spec)
    if ":" in text:
        prefix, _, rest = text.partition(":")
        if prefix in BACKENDS:
            if not rest:
                raise ValidationError(
                    f"store backend spec {text!r} is missing a path after the prefix"
                )
            return BACKENDS[prefix](rest)
        raise ValidationError(
            f"unknown store backend {prefix!r} in {text!r} "
            f"(available: {', '.join(sorted(BACKENDS))})"
        )
    return LocalBackend(text)
