"""Sweep templates: a base scenario spec fanned over named axes.

A template is JSON of the form::

    {
      "name": "fig1-four-panel",
      "description": "Fig. 1: all four policy-comparison panels",
      "base": { ...ScenarioSpec dict (partial; defaults apply)... },
      "axes": {
        "panel": [
          {"label": "delay-ping", "experiment": "fig1-delay-ping",
           "metric": "delay-ping", "params.include_full_mesh": true},
          {"label": "bandwidth", "experiment": "fig1-bandwidth",
           "metric": "bandwidth"}
        ],
        "n": [25, 50]
      },
      "spawn_seeds": true
    }

Axis points come in two shapes:

* a **scalar** — assigned to the field named by the axis itself
  (``"n": [25, 50]``); dotted names reach into dict-valued fields
  (``"params.k"``, ``"churn.rate"``);
* an **object** — several field assignments applied together (one axis
  point that moves ``experiment`` *and* ``metric``), with an optional
  ``"label"`` key used for display only.

Expansion takes the Cartesian product of the axes in declaration order,
applies each combination onto the base spec's dictionary form, and
validates the result through :meth:`ScenarioSpec.from_dict` — so a
malformed template fails before anything runs.  Unless an axis assigns
``seed`` (or ``spawn_seeds`` is false), every cell receives its own
integer seed spawned from the base seed via
:func:`repro.util.rng.spawn_seeds` — the same per-cell stream discipline
``SimulationSession.engine_grid``/``deployment_grid`` apply inside a
single run, lifted to the sweep grid.  Cell identity is the content hash
of the final spec (:func:`spec_key`), which is what the
:class:`~repro.sweep.store.SweepStore` addresses results by.

A corpus file may instead hold ``{"name": ..., "include": ["a.json",
"b.json"]}``; included paths are resolved relative to the file and may
nest (cycles are rejected), which is how ``scenarios/fig_all.json``
composes the whole evaluation out of the per-figure templates.
"""

from __future__ import annotations

import copy
import hashlib
import itertools
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.scenario.spec import ScenarioSpec
from repro.util.rng import spawn_seeds
from repro.util.validation import ValidationError


def spec_key(spec: ScenarioSpec) -> str:
    """Content address of a scenario spec: hash of its canonical JSON.

    blake2b with the same digest size as
    :func:`repro.core.route_cache.array_fingerprint`, so one digest
    convention covers all content addressing in the repo.
    """
    payload = json.dumps(spec.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(payload.encode(), digest_size=16).hexdigest()


def _assign(data: Dict[str, object], path: str, value) -> None:
    """Set ``path`` (possibly dotted into a dict-valued field) on ``data``."""
    parts = path.split(".")
    head = parts[0]
    if head not in ScenarioSpec.__dataclass_fields__:
        raise ValidationError(
            f"axis field {path!r} does not name a ScenarioSpec field"
        )
    if len(parts) == 1:
        data[head] = value
        return
    if len(parts) != 2 or head not in ("params", "churn", "cheating"):
        raise ValidationError(
            f"axis field {path!r}: dotted paths must be one level into "
            "'params', 'churn', or 'cheating'"
        )
    nested = data.get(head)
    if nested is None:
        nested = {}
        data[head] = nested
    nested[parts[1]] = value


def _display(value) -> str:
    """Compact display form of an axis point value."""
    return json.dumps(value, separators=(",", ":"))


@dataclass(frozen=True)
class SweepCell:
    """One expanded grid cell: a concrete spec plus its sweep coordinates."""

    template: str
    index: int
    spec: ScenarioSpec
    #: ``(axis name, display value)`` pairs, in axis declaration order.
    assignment: Tuple[Tuple[str, str], ...]
    key: str

    def describe(self) -> str:
        """Human-readable coordinates, e.g. ``panel=delay-ping, n=50``."""
        return ", ".join(f"{axis}={value}" for axis, value in self.assignment) or "-"


@dataclass
class SweepTemplate:
    """A base spec plus axes; :meth:`expand` yields the cell grid."""

    name: str
    base: Dict[str, object]
    axes: Dict[str, List[object]] = field(default_factory=dict)
    description: str = ""
    spawn_seeds: bool = True

    def validate(self) -> "SweepTemplate":
        """Check the template is well-formed (axes usable, cells parse).

        The base may be partial — an axis can supply ``experiment`` or any
        other required field — so the probe validated here is the base
        with the *first* point of every axis applied (expansion then
        validates every cell with its own coordinates in the error).
        """
        if not self.name:
            raise ValidationError("a sweep template needs a name")
        for axis, points in self.axes.items():
            if not isinstance(points, list) or not points:
                raise ValidationError(
                    f"axis {axis!r} of template {self.name!r} must be a non-empty list"
                )
            for point in points:
                if isinstance(point, dict):
                    fields = [key for key in point if key != "label"]
                    if not fields:
                        raise ValidationError(
                            f"axis {axis!r} of template {self.name!r} has a point "
                            "with no field assignments"
                        )
        probe = copy.deepcopy(self.base)
        for axis, points in self.axes.items():
            point = points[0]
            if isinstance(point, dict):
                for path, value in point.items():
                    if path != "label":
                        _assign(probe, path, value)
            else:
                _assign(probe, axis, point)
        try:
            ScenarioSpec.from_dict(probe)
        except ValidationError as error:
            raise ValidationError(f"template {self.name!r}: {error}")
        if self.spawn_seeds and not self._seed_swept() and self.base.get("seed", 0) is None:
            raise ValidationError(
                f"template {self.name!r} spawns per-cell seeds but its base "
                "spec has seed=None; set a base seed or spawn_seeds=false"
            )
        return self

    def _seed_swept(self) -> bool:
        """True when some axis assigns the seed itself."""
        for axis, points in self.axes.items():
            if axis == "seed":
                return True
            for point in points:
                if isinstance(point, dict) and "seed" in point:
                    return True
        return False

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SweepTemplate":
        """Parse (and validate) a template from its JSON dictionary."""
        data = dict(data)
        unknown = set(data) - {"name", "base", "axes", "description", "spawn_seeds"}
        if unknown:
            raise ValidationError(
                f"unknown sweep template fields {sorted(unknown)}"
            )
        if "base" not in data or not isinstance(data["base"], dict):
            raise ValidationError("a sweep template needs a 'base' spec dictionary")
        template = cls(
            name=str(data.get("name", "")),
            base=dict(data["base"]),
            axes={str(k): list(v) for k, v in dict(data.get("axes", {})).items()},
            description=str(data.get("description", "")),
            spawn_seeds=bool(data.get("spawn_seeds", True)),
        )
        return template.validate()

    # ------------------------------------------------------------------ #
    # Expansion
    # ------------------------------------------------------------------ #
    def expand(self) -> List[SweepCell]:
        """The full cell grid, in deterministic Cartesian-product order."""
        self.validate()
        axis_names = list(self.axes)
        combos = list(itertools.product(*(self.axes[a] for a in axis_names)))
        spawn = self.spawn_seeds and not self._seed_swept()
        seeds = spawn_seeds(self.base.get("seed", 0), len(combos)) if spawn else None
        cells: List[SweepCell] = []
        for index, combo in enumerate(combos):
            data = copy.deepcopy(self.base)
            assignment: List[Tuple[str, str]] = []
            try:
                for axis, point in zip(axis_names, combo):
                    if isinstance(point, dict):
                        for path, value in point.items():
                            if path == "label":
                                continue
                            _assign(data, path, value)
                        label = point.get("label")
                        if label is None:
                            label = _display(
                                next(v for k, v in point.items() if k != "label")
                            )
                        assignment.append((axis, str(label)))
                    else:
                        _assign(data, axis, point)
                        assignment.append((axis, _display(point)))
                if seeds is not None:
                    data["seed"] = seeds[index]
                spec = ScenarioSpec.from_dict(data)
            except ValidationError as error:
                coords = ", ".join(f"{a}={v}" for a, v in assignment) or "-"
                raise ValidationError(
                    f"template {self.name!r}, cell {index} ({coords}): {error}"
                )
            cells.append(
                SweepCell(
                    template=self.name,
                    index=index,
                    spec=spec,
                    assignment=tuple(assignment),
                    key=spec_key(spec),
                )
            )
        return cells


def load_templates(path: str, _seen: frozenset = frozenset()) -> List[SweepTemplate]:
    """Load a template (or an ``include`` corpus) file into templates.

    Included paths resolve relative to the including file; include cycles
    raise instead of recursing forever.
    """
    resolved = os.path.abspath(path)
    if resolved in _seen:
        raise ValidationError(f"sweep corpus include cycle through {path!r}")
    try:
        with open(resolved) as handle:
            data = json.load(handle)
    except OSError as error:
        raise ValidationError(f"cannot read sweep template {path!r}: {error}")
    except json.JSONDecodeError as error:
        raise ValidationError(f"sweep template {path!r} is not valid JSON: {error}")
    if not isinstance(data, dict):
        raise ValidationError(f"sweep template {path!r} must be a JSON object")
    if "include" in data:
        unknown = set(data) - {"name", "description", "include"}
        if unknown:
            raise ValidationError(
                f"corpus file {path!r} mixes 'include' with template fields "
                f"{sorted(unknown)}"
            )
        includes = data["include"]
        if not isinstance(includes, list) or not includes:
            raise ValidationError(f"corpus file {path!r} has an empty 'include' list")
        templates: List[SweepTemplate] = []
        for entry in includes:
            child = os.path.join(os.path.dirname(resolved), str(entry))
            templates.extend(load_templates(child, _seen | {resolved}))
        return templates
    return [SweepTemplate.from_dict(data)]


def expand_corpus(templates: Sequence[SweepTemplate]) -> List[SweepCell]:
    """Expand every template and deduplicate content-identical cells.

    Two templates naming the same concrete spec would execute (and store)
    the same cell; the first occurrence wins, keeping the plan order
    deterministic.
    """
    cells: List[SweepCell] = []
    seen: set = set()
    for template in templates:
        for cell in template.expand():
            if cell.key in seen:
                continue
            seen.add(cell.key)
            cells.append(cell)
    return cells
