"""Parallel execution of expanded sweep cells.

:func:`run_sweep` is the engine room of ``repro sweep``: it filters the
cell grid against the :class:`~repro.sweep.store.SweepStore` (``resume``
skips completed cells), fans the pending cells across a
``multiprocessing`` pool, and persists every finished cell as soon as its
result arrives — so killing the sweep loses at most the cells in flight.

Workers run whole cells through the existing
:class:`~repro.scenario.session.SimulationSession` facade: each cell is
an independent deterministic simulation seeded by its own spec, and the
fused ``DeploymentBatch``/``EngineBatch`` kernels are reused inside every
worker.  Because a cell's result is a pure function of its spec, results
are byte-identical across ``workers=1`` and ``workers=N`` regardless of
scheduling order.

The pool prefers the cheap ``fork`` start method (Linux) and falls back
to ``spawn`` elsewhere; the worker entry point is a module-level function
so both methods can pickle it.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.scenario.spec import ScenarioSpec
from repro.sweep.store import SweepStore
from repro.sweep.template import SweepCell
from repro.util.validation import ValidationError


def _execute_cell(payload: Tuple[int, Dict[str, object], bool]):
    """Worker entry point: run one cell's scenario, return its outcome.

    Returns ``(index, result_dict, None)`` on success and
    ``(index, None, "ExcType: message")`` on failure.  A crashing cell
    must surface as a per-cell failure record, not as the pool's own
    exception — ``imap_unordered`` would re-raise it in the parent and
    abort every other in-flight cell with a bare traceback.
    """
    index, spec_dict, batched = payload
    from repro.scenario.session import SimulationSession

    try:
        spec = ScenarioSpec.from_dict(spec_dict)
        result = SimulationSession(spec, batched=batched).run()
    except Exception as error:  # noqa: BLE001 - contained per cell by design
        return index, None, f"{type(error).__name__}: {error}"
    return index, result.as_dict(), None


def _pool_context() -> multiprocessing.context.BaseContext:
    """The cheapest available start method (fork where the OS has it)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


@dataclass
class SweepReport:
    """What one :func:`run_sweep` invocation did."""

    total: int
    workers: int
    executed: List[str] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)
    #: ``(cell key, error string)`` of every cell whose run raised.
    failed: List[Tuple[str, str]] = field(default_factory=list)

    def summary(self) -> str:
        """One machine-greppable line (CI asserts on ``skipped=...``)."""
        return (
            f"SWEEP total={self.total} executed={len(self.executed)} "
            f"skipped={len(self.skipped)} failed={len(self.failed)} "
            f"workers={self.workers}"
        )


def run_sweep(
    cells: Sequence[SweepCell],
    store: SweepStore,
    *,
    workers: int = 1,
    batched: bool = True,
    resume: bool = False,
    on_cell: Optional[Callable[[SweepCell], None]] = None,
) -> SweepReport:
    """Execute ``cells`` into ``store``; returns the execution report.

    Parameters
    ----------
    cells:
        The expanded grid (see :func:`repro.sweep.template.expand_corpus`).
    store:
        Destination store; finished cells are written atomically as they
        complete, in completion order (the store is content-addressed, so
        order does not matter).
    workers:
        Pool size.  ``1`` runs inline in this process — no pool, same
        bytes.
    batched:
        Kernel-path choice forwarded to every cell's session (execution
        detail, not part of any cell's identity).
    resume:
        Skip cells whose key is already in the store.  Without it every
        cell re-executes (and overwrites its content-identical file).
    on_cell:
        Optional progress callback, invoked with each cell as its result
        is persisted.

    A cell whose run raises is recorded in ``report.failed`` (key plus a
    one-line error) and the remaining cells keep draining; nothing is
    stored for failed cells, so a fixed-up re-run with ``resume`` picks
    exactly them up again.
    """
    if workers < 1:
        raise ValidationError("workers must be >= 1")
    # A sweep killed mid-write may have left .<key>.<pid>.tmp orphans
    # behind; every sweep start reclaims the ones whose writer is gone.
    store.purge_stale_tmp()
    report = SweepReport(total=len(cells), workers=int(workers))
    pending: List[SweepCell] = []
    for cell in cells:
        if resume and store.has(cell.key):
            report.skipped.append(cell.key)
        else:
            pending.append(cell)
    if not pending:
        return report

    by_index = dict(enumerate(pending))
    payloads = [
        (index, cell.spec.to_dict(), bool(batched))
        for index, cell in by_index.items()
    ]

    def record(index: int, result: Optional[Dict[str, object]], error: Optional[str]) -> None:
        cell = by_index[index]
        if error is not None:
            report.failed.append((cell.key, error))
            return
        store.put(cell.key, cell.spec.to_dict(), result)
        report.executed.append(cell.key)
        if on_cell is not None:
            on_cell(cell)

    if workers == 1 or len(pending) == 1:
        for payload in payloads:
            index, result, error = _execute_cell(payload)
            record(index, result, error)
        return report

    context = _pool_context()
    with context.Pool(processes=min(workers, len(pending))) as pool:
        for index, result, error in pool.imap_unordered(
            _execute_cell, payloads, chunksize=1
        ):
            record(index, result, error)
    return report
