"""Parallel execution of expanded sweep cells.

:func:`run_sweep` is the engine room of ``repro sweep``: it filters the
cell grid against the :class:`~repro.sweep.store.SweepStore` (``resume``
skips completed cells), fans the pending cells across a
``multiprocessing`` pool, and persists every finished cell as soon as its
result is computed — so killing the sweep loses at most the cells in
flight.

Since the distributed layer landed, the local pool is *one backend of
the same claim protocol* that ``repro sweep-worker`` speaks across
hosts: every pool worker claims its cell
(:func:`repro.sweep.dist.worker.execute_cell_claimed` — ``O_EXCL`` claim
file, heartbeat lease renewal, done/failed side records), executes it
through the existing :class:`~repro.scenario.session.SimulationSession`
facade, and writes the result itself.  A ``repro sweep`` and any number
of ``sweep-worker`` processes (local or remote, via a ``shared-fs``
store) can therefore share one store without duplicating work: a cell
another live worker holds is *deferred*, not re-run.

Because a cell's result is a pure function of its spec, results are
byte-identical across ``workers=1`` and ``workers=N`` regardless of
scheduling order — and across hosts.

The pool prefers the cheap ``fork`` start method (Linux) and falls back
to ``spawn`` elsewhere; the worker entry point is a module-level function
so both methods can pickle it.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.sweep.dist.claims import DEFAULT_LEASE_SECONDS
from repro.sweep.dist.worker import CellFailure, execute_cell_claimed
from repro.sweep.store import SweepStore
from repro.sweep.template import SweepCell
from repro.telemetry import runtime as telemetry
from repro.util.validation import ValidationError


def _execute_cell(payload: Tuple[int, str, Dict[str, object], Dict[str, object]]):
    """Pool entry point: claim and run one cell, return its outcome.

    Returns ``(index, outcome_dict)``; the outcome's ``status`` is
    ``done`` / ``failed`` / ``claimed`` / ``already-done`` (see
    :func:`repro.sweep.dist.worker.execute_cell_claimed`).  A crashing
    cell surfaces as a ``failed`` outcome, not as the pool's own
    exception — ``imap_unordered`` would re-raise it in the parent and
    abort every other in-flight cell with a bare traceback.
    """
    index, key, spec_dict, options = payload
    try:
        outcome = execute_cell_claimed(
            key,
            spec_dict,
            store_spec=str(options["store_spec"]),
            batched=bool(options["batched"]),
            lease_seconds=float(options["lease_seconds"]),
            skip_done=bool(options["skip_done"]),
            clear_failed=True,
        )
    except Exception as error:  # noqa: BLE001 - protocol errors contained too
        import traceback

        outcome = {
            "key": key,
            "status": "failed",
            "error": f"{type(error).__name__}: {error}",
            "traceback": traceback.format_exc(),
        }
    return index, outcome


def _pool_context() -> multiprocessing.context.BaseContext:
    """The cheapest available start method (fork where the OS has it)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


@dataclass
class SweepReport:
    """What one :func:`run_sweep` invocation did."""

    total: int
    workers: int
    executed: List[str] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)
    #: Every cell whose run raised: key, one-line error, full traceback.
    failed: List[CellFailure] = field(default_factory=list)
    #: Cells another live worker held (their lease was valid): nothing
    #: ran here; a concurrent ``sweep-worker`` — possibly on another
    #: host — owns them.
    deferred: List[str] = field(default_factory=list)

    def summary(self) -> str:
        """One machine-greppable line (CI asserts on ``skipped=...``)."""
        line = (
            f"SWEEP total={self.total} executed={len(self.executed)} "
            f"skipped={len(self.skipped)} failed={len(self.failed)}"
        )
        if self.deferred:
            line += f" deferred={len(self.deferred)}"
        return f"{line} workers={self.workers}"


def run_sweep(
    cells: Sequence[SweepCell],
    store: SweepStore,
    *,
    workers: int = 1,
    batched: bool = True,
    resume: bool = False,
    lease_seconds: float = DEFAULT_LEASE_SECONDS,
    on_cell: Optional[Callable[[SweepCell], None]] = None,
) -> SweepReport:
    """Execute ``cells`` into ``store``; returns the execution report.

    Parameters
    ----------
    cells:
        The expanded grid (see :func:`repro.sweep.template.expand_corpus`).
    store:
        Destination store; finished cells are written atomically as they
        complete, in completion order (the store is content-addressed, so
        order does not matter).
    workers:
        Pool size.  ``1`` runs inline in this process — no pool, same
        bytes.
    batched:
        Kernel-path choice forwarded to every cell's session (execution
        detail, not part of any cell's identity).
    resume:
        Skip cells whose key is already in the store.  Without it every
        cell re-executes (and overwrites its content-identical file).
    lease_seconds:
        Claim lease length for the work-claiming protocol (matters only
        when other workers share the store).
    on_cell:
        Optional progress callback, invoked with each cell as its result
        is persisted.

    A cell whose run raises is recorded in ``report.failed`` (key,
    one-line error, and the full traceback — also persisted as
    ``claims/<key>.failed`` in the store) and the remaining cells keep
    draining; nothing is stored for failed cells, so a fixed-up re-run
    with ``resume`` picks exactly them up again.  A cell held by another
    live worker's lease lands in ``report.deferred`` instead of being
    duplicated.
    """
    if workers < 1:
        raise ValidationError("workers must be >= 1")
    with telemetry.span("sweep.run", cells=len(cells), workers=int(workers)):
        # A sweep killed mid-write may have left .<key>.<host>.<pid>.tmp
        # orphans behind; every sweep start reclaims this host's dead ones.
        store.purge_stale_tmp()
        report = SweepReport(total=len(cells), workers=int(workers))
        pending: List[SweepCell] = []
        for cell in cells:
            if resume and store.has(cell.key):
                report.skipped.append(cell.key)
            else:
                pending.append(cell)
        if report.skipped:
            telemetry.count("sweep.cells.skipped", len(report.skipped))
        if not pending:
            return report

        by_index = dict(enumerate(pending))
        options = {
            "store_spec": store.backend.describe(),
            "batched": bool(batched),
            "lease_seconds": float(lease_seconds),
            # Without --resume a re-run must re-execute even completed cells;
            # with it, skip_done also absorbs races with concurrent workers
            # that finish a cell between our filter and our claim.
            "skip_done": bool(resume),
        }
        payloads = [
            (index, cell.key, cell.spec.to_dict(), options)
            for index, cell in by_index.items()
        ]

        def record(index: int, outcome: Dict[str, object]) -> None:
            cell = by_index[index]
            status = outcome.get("status")
            if status == "failed":
                telemetry.count("sweep.cells.failed")
                report.failed.append(
                    CellFailure(
                        key=cell.key,
                        error=str(outcome.get("error", "")),
                        traceback=str(outcome.get("traceback", "")),
                    )
                )
            elif status == "claimed":
                telemetry.count("sweep.cells.deferred")
                report.deferred.append(cell.key)
            elif status == "already-done":
                telemetry.count("sweep.cells.skipped")
                report.skipped.append(cell.key)
            else:  # done
                telemetry.count("sweep.cells.done")
                # Pool cells execute in child processes, where the parent's
                # tracer is invisible; the claim protocol's elapsed seconds
                # travel back in the outcome, so the parent back-dates one
                # span per completed cell regardless of backend.
                telemetry.record_span(
                    "sweep.cell",
                    float(outcome.get("elapsed", 0.0)),
                    key=cell.key,
                    reclaimed=bool(outcome.get("reclaimed", False)),
                )
                report.executed.append(cell.key)
                if on_cell is not None:
                    on_cell(cell)

        if workers == 1 or len(pending) == 1:
            for payload in payloads:
                index, outcome = _execute_cell(payload)
                record(index, outcome)
            return report

        context = _pool_context()
        with context.Pool(processes=min(workers, len(pending))) as pool:
            for index, outcome in pool.imap_unordered(
                _execute_cell, payloads, chunksize=1
            ):
                record(index, outcome)
        return report
