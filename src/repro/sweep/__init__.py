"""Parallel sweep orchestration over declarative scenario templates.

The paper's evaluation is a grid: every figure is one scenario family
swept over ``k``, metric, policy, and churn/cheating knobs.  This package
turns such a grid into a first-class, resumable, parallel operation:

* :mod:`repro.sweep.template` — a :class:`SweepTemplate` is a base
  :class:`~repro.scenario.spec.ScenarioSpec` plus named axes; expansion
  takes the Cartesian product and yields one fully-validated spec per
  cell (each with its own spawned seed, mirroring the per-cell stream
  discipline of ``SimulationSession.engine_grid``/``deployment_grid``).
* :mod:`repro.sweep.store` — a content-addressed on-disk
  :class:`SweepStore`: cells are keyed by the hash of their canonical
  spec JSON and persisted atomically with the spec as provenance, so an
  interrupted sweep resumes by skipping completed cells.
* :mod:`repro.sweep.executor` — :func:`run_sweep` fans the pending cells
  across a ``multiprocessing`` pool; every worker runs cells through the
  existing :class:`~repro.scenario.session.SimulationSession` facade, so
  the fused ``DeploymentBatch``/``EngineBatch`` kernels are reused inside
  each worker and ``--workers 1`` and ``--workers N`` are byte-identical.
* :mod:`repro.sweep.aggregate` — joins finished cells back into the
  existing :class:`~repro.experiments.harness.ExperimentResult`
  tables/series, one merged result per experiment group.
* :mod:`repro.sweep.dist` — multi-host execution with no coordinator:
  pluggable store backends (``local`` / ``shared-fs``), the atomic
  claim-file protocol with lease-expiry reclamation, the
  ``repro sweep-worker`` drain loop, and the ``--status`` progress view.

The CLI surface is ``repro sweep TEMPLATE.json --workers N [--resume]
[--dry-run] [--status]`` plus ``repro sweep-worker TEMPLATE.json --store
DIR``; the checked-in paper-scale corpus lives in ``scenarios/``.
"""

from repro.sweep.aggregate import aggregate_cells
from repro.sweep.dist import (
    CellFailure,
    ClaimStore,
    StoreBackend,
    WorkerReport,
    corpus_status,
    parse_backend,
    run_worker,
)
from repro.sweep.executor import SweepReport, run_sweep
from repro.sweep.store import SweepStore
from repro.sweep.template import (
    SweepCell,
    SweepTemplate,
    expand_corpus,
    load_templates,
    spec_key,
)

__all__ = [
    "CellFailure",
    "ClaimStore",
    "StoreBackend",
    "SweepCell",
    "SweepReport",
    "SweepStore",
    "SweepTemplate",
    "WorkerReport",
    "aggregate_cells",
    "corpus_status",
    "expand_corpus",
    "load_templates",
    "parse_backend",
    "run_sweep",
    "run_worker",
    "spec_key",
]
