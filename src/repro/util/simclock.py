"""A tiny simulation clock shared by the overlay engine and churn models.

The EGOIST evaluation is organised around *wiring epochs* of T seconds
(T = 60 s in the paper), with individual node re-wirings spread uniformly
inside an epoch (one every T/n seconds on average for an n-node overlay).
:class:`SimClock` keeps the current simulated time and provides epoch
bookkeeping so that the engine, churn processes, and overhead accounting
all agree on what "now" means.
"""

from __future__ import annotations

from repro.util.validation import check_non_negative, check_positive


class SimClock:
    """Simulated wall clock measured in seconds.

    Parameters
    ----------
    epoch_length:
        Length of a wiring epoch ``T`` in seconds (default 60, as in the
        paper's PlanetLab deployment).
    start:
        Initial simulated time in seconds.
    """

    def __init__(self, epoch_length: float = 60.0, start: float = 0.0):
        self.epoch_length = check_positive(epoch_length, "epoch_length")
        self._now = check_non_negative(start, "start")

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def epoch(self) -> int:
        """Index of the current wiring epoch (0-based)."""
        return int(self._now // self.epoch_length)

    @property
    def time_in_epoch(self) -> float:
        """Seconds elapsed since the start of the current epoch."""
        return self._now - self.epoch * self.epoch_length

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` and return the new time."""
        seconds = check_non_negative(seconds, "seconds")
        self._now += seconds
        return self._now

    def advance_to(self, when: float) -> float:
        """Advance the clock to absolute time ``when`` (monotonic only)."""
        when = check_non_negative(when, "when")
        if when < self._now:
            raise ValueError(
                f"cannot move clock backwards from {self._now} to {when}"
            )
        self._now = when
        return self._now

    def next_epoch_start(self) -> float:
        """Absolute time at which the next wiring epoch begins."""
        return (self.epoch + 1) * self.epoch_length

    def reset(self, start: float = 0.0) -> None:
        """Rewind the clock (used between independent experiment runs)."""
        self._now = check_non_negative(start, "start")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.3f}, epoch={self.epoch})"
