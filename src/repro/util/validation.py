"""Input-validation helpers with consistent, informative error messages."""

from __future__ import annotations

from typing import Optional

import numpy as np


class ValidationError(ValueError):
    """Raised when a caller supplies an invalid argument."""


def check_positive(value: float, name: str) -> float:
    """Ensure ``value`` is strictly positive; return it as ``float``."""
    value = float(value)
    if not value > 0:
        raise ValidationError(f"{name} must be > 0, got {value}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Ensure ``value`` is >= 0; return it as ``float``."""
    value = float(value)
    if value < 0:
        raise ValidationError(f"{name} must be >= 0, got {value}")
    return value


def check_probability(value: float, name: str) -> float:
    """Ensure ``value`` lies in ``[0, 1]``; return it as ``float``."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValidationError(f"{name} must be in [0, 1], got {value}")
    return value


def check_in_range(
    value: float,
    name: str,
    low: Optional[float] = None,
    high: Optional[float] = None,
    low_inclusive: bool = True,
    high_inclusive: bool = True,
) -> float:
    """Ensure ``value`` lies within the given (optionally open) range."""
    value = float(value)
    if low is not None:
        ok = value >= low if low_inclusive else value > low
        if not ok:
            op = ">=" if low_inclusive else ">"
            raise ValidationError(f"{name} must be {op} {low}, got {value}")
    if high is not None:
        ok = value <= high if high_inclusive else value < high
        if not ok:
            op = "<=" if high_inclusive else "<"
            raise ValidationError(f"{name} must be {op} {high}, got {value}")
    return value


def check_matrix_square(matrix: np.ndarray, name: str) -> np.ndarray:
    """Ensure ``matrix`` is a 2-D square numpy array; return it as float64."""
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ValidationError(
            f"{name} must be a square 2-D matrix, got shape {arr.shape}"
        )
    return arr


def check_index(index: int, size: int, name: str) -> int:
    """Ensure ``index`` is a valid position in a container of ``size``."""
    index = int(index)
    if not 0 <= index < size:
        raise ValidationError(f"{name} must be in [0, {size}), got {index}")
    return index
