"""Shared utilities: RNG plumbing, statistics, validation, and simulation time.

These helpers are deliberately small and dependency-light; every other
subpackage of :mod:`repro` builds on them.
"""

from repro.util.rng import SeedLike, as_generator, spawn_generators
from repro.util.stats import (
    Ewma,
    OnlineMeanVar,
    confidence_interval,
    geometric_mean,
    mean_and_ci,
    percentile,
    summarize,
)
from repro.util.validation import (
    ValidationError,
    check_in_range,
    check_matrix_square,
    check_non_negative,
    check_positive,
    check_probability,
)
from repro.util.simclock import SimClock

__all__ = [
    "SeedLike",
    "as_generator",
    "spawn_generators",
    "Ewma",
    "OnlineMeanVar",
    "confidence_interval",
    "geometric_mean",
    "mean_and_ci",
    "percentile",
    "summarize",
    "ValidationError",
    "check_in_range",
    "check_matrix_square",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "SimClock",
]
