"""Statistics helpers used throughout the experiments.

The paper reports the mean of per-node costs together with the
95th-percentile confidence interval; :func:`mean_and_ci` implements exactly
that.  :class:`Ewma` reproduces the exponentially-weighted moving average
used for PlanetLab CPU load smoothing (Section 4.1 of the paper).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np


class Ewma:
    """Exponentially-weighted moving average.

    Parameters
    ----------
    alpha:
        Smoothing factor in ``(0, 1]``.  Higher values weight recent
        samples more heavily.
    initial:
        Optional initial value; if ``None`` the first observation seeds
        the average.
    """

    def __init__(self, alpha: float = 0.2, initial: Optional[float] = None):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = float(alpha)
        self._value: Optional[float] = initial
        self._count = 0

    @property
    def value(self) -> float:
        """Current smoothed value (raises if no samples observed)."""
        if self._value is None:
            raise ValueError("EWMA has no observations yet")
        return self._value

    @property
    def count(self) -> int:
        """Number of samples folded into the average."""
        return self._count

    def update(self, sample: float) -> float:
        """Fold ``sample`` into the average and return the new value."""
        sample = float(sample)
        if self._value is None:
            self._value = sample
        else:
            self._value = self.alpha * sample + (1.0 - self.alpha) * self._value
        self._count += 1
        return self._value

    def reset(self, initial: Optional[float] = None) -> None:
        """Discard all state, optionally re-seeding with ``initial``."""
        self._value = initial
        self._count = 0


@dataclass
class OnlineMeanVar:
    """Welford online mean/variance accumulator."""

    count: int = 0
    mean: float = 0.0
    _m2: float = field(default=0.0, repr=False)

    def update(self, sample: float) -> None:
        """Add one sample."""
        self.count += 1
        delta = sample - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (sample - self.mean)

    def extend(self, samples: Iterable[float]) -> None:
        """Add many samples."""
        for s in samples:
            self.update(s)

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1); zero if fewer than two samples."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)


# Two-sided critical values for the normal approximation.
_Z_VALUES = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def confidence_interval(
    samples: Sequence[float], level: float = 0.95
) -> Tuple[float, float]:
    """Return the half-width symmetric confidence interval of the mean.

    Uses the normal approximation, matching the paper's reporting of
    "95th-percentile confidence intervals" around per-node mean costs.

    Returns ``(low, high)``; degenerate (mean, mean) for < 2 samples.
    """
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("confidence_interval needs at least one sample")
    mean = float(arr.mean())
    if arr.size < 2:
        return (mean, mean)
    z = _Z_VALUES.get(round(level, 2))
    if z is None:
        raise ValueError(f"unsupported confidence level {level}")
    half = z * float(arr.std(ddof=1)) / math.sqrt(arr.size)
    return (mean - half, mean + half)


def mean_and_ci(
    samples: Sequence[float], level: float = 0.95
) -> Tuple[float, float]:
    """Return ``(mean, half_width)`` of the confidence interval."""
    arr = np.asarray(list(samples), dtype=float)
    low, high = confidence_interval(arr, level=level)
    return (float(arr.mean()), (high - low) / 2.0)


def percentile(samples: Sequence[float], q: float) -> float:
    """Return the ``q``-th percentile (q in [0, 100]) of ``samples``."""
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("percentile needs at least one sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    return float(np.percentile(arr, q))


def geometric_mean(samples: Sequence[float]) -> float:
    """Geometric mean of strictly positive samples."""
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("geometric_mean needs at least one sample")
    if np.any(arr <= 0):
        raise ValueError("geometric_mean requires strictly positive samples")
    return float(np.exp(np.mean(np.log(arr))))


def summarize(samples: Sequence[float]) -> dict:
    """Return a dictionary with common summary statistics.

    Keys: ``count``, ``mean``, ``std``, ``min``, ``p50``, ``p95``, ``max``,
    ``ci95`` (half-width).
    """
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("summarize needs at least one sample")
    mean, half = mean_and_ci(arr)
    return {
        "count": int(arr.size),
        "mean": mean,
        "std": float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        "min": float(arr.min()),
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "max": float(arr.max()),
        "ci95": half,
    }
