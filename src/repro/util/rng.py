"""Random-number-generator plumbing.

Every stochastic component of the library accepts either a seed or a
:class:`numpy.random.Generator`.  Routing everything through
:func:`as_generator` keeps experiments reproducible bit-for-bit while still
allowing callers to share a single generator across components when they
want correlated randomness.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

#: Anything acceptable as a source of randomness.
SeedLike = Union[None, int, np.random.SeedSequence, np.random.Generator]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an integer seed, a
        :class:`numpy.random.SeedSequence`, or an existing generator
        (returned unchanged).

    Returns
    -------
    numpy.random.Generator
        A generator ready for use.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_generators(seed: SeedLike, count: int) -> Sequence[np.random.Generator]:
    """Spawn ``count`` independent child generators from ``seed``.

    Children are statistically independent regardless of whether ``seed``
    was an integer, a SeedSequence, or an existing generator.  Useful for
    giving every simulated node its own stream so that adding or removing
    one node does not perturb the randomness seen by the others.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive children deterministically from the generator's state.
        root = np.random.SeedSequence(seed.integers(0, 2**63 - 1))
    elif isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(count)]


def spawn_seeds(seed: SeedLike, count: int) -> list:
    """Spawn ``count`` independent *integer* seeds from ``seed``.

    The serialisable sibling of :func:`spawn_generators`: children are
    derived through the same :class:`numpy.random.SeedSequence` spawning
    discipline, but materialised as plain Python integers so they can
    live in a JSON-serialisable :class:`~repro.scenario.spec.ScenarioSpec`.
    A sweep template uses this to give every expanded cell its own
    stream exactly as ``SimulationSession.engine_grid`` /
    ``deployment_grid`` give every grid cell its own spawned generator.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        root = np.random.SeedSequence(seed.integers(0, 2**63 - 1))
    elif isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed)
    return [int(child.generate_state(2, np.uint64)[0]) for child in root.spawn(count)]


def random_subset(
    rng: np.random.Generator,
    items: Sequence,
    size: int,
    exclude: Optional[set] = None,
) -> list:
    """Sample ``size`` distinct items from ``items`` (excluding ``exclude``).

    Raises :class:`ValueError` if fewer than ``size`` eligible items exist.
    """
    pool = [x for x in items if exclude is None or x not in exclude]
    if size > len(pool):
        raise ValueError(
            f"cannot sample {size} items from a pool of {len(pool)}"
        )
    idx = rng.choice(len(pool), size=size, replace=False)
    return [pool[i] for i in idx]
