"""Overlay link-state routing protocol.

Every EGOIST node floods a :class:`LinkStateAnnouncement` describing its
established links and their costs.  Each node keeps a
:class:`TopologyDatabase` of the freshest announcement per origin, from
which it reconstructs the overlay graph (the residual graph ``G_{-i}`` it
needs for best-response computation is obtained by dropping its own entry).

The :class:`LinkStateProtocol` class simulates the flooding at epoch
granularity: announcements issued by ON nodes are delivered to all other ON
nodes that are reachable in the overlay (a newcomer that has connected to
at least one bootstrap neighbour will therefore obtain the full residual
graph, as described in Section 3.1), and protocol traffic is accounted for
the Section 4.3 overhead analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

import numpy as np

from repro.routing.graph import OverlayGraph
from repro.routing.messages import (
    LinkStateAnnouncement,
    announcement_size_bits,
    delivery_outcomes,
)
from repro.util.validation import ValidationError, check_index, check_positive


class TopologyDatabase:
    """Per-node store of the freshest link-state announcement per origin."""

    def __init__(self, n: int):
        if n < 1:
            raise ValidationError(f"n must be >= 1, got {n}")
        self.n = int(n)
        self._announcements: Dict[int, LinkStateAnnouncement] = {}

    def insert(self, announcement: LinkStateAnnouncement) -> bool:
        """Insert ``announcement`` if it is fresher than what we hold.

        Returns True if the database changed.
        """
        current = self._announcements.get(announcement.origin)
        if current is not None and current.sequence >= announcement.sequence:
            return False
        self._announcements[announcement.origin] = announcement
        return True

    def remove_origin(self, origin: int) -> None:
        """Forget the announcement of ``origin`` (e.g. node timed out)."""
        self._announcements.pop(origin, None)

    def known_origins(self) -> Set[int]:
        """Origins for which we hold an announcement."""
        return set(self._announcements)

    def announcement(self, origin: int) -> Optional[LinkStateAnnouncement]:
        """The stored announcement of ``origin`` (or None)."""
        return self._announcements.get(origin)

    def build_graph(self, exclude_origin: Optional[int] = None) -> OverlayGraph:
        """Reconstruct the overlay graph from stored announcements.

        Parameters
        ----------
        exclude_origin:
            If given, that origin's announcement is skipped — yielding the
            residual graph ``G_{-i}`` used for best-response computation.
        """
        graph = OverlayGraph(self.n)
        for origin, ann in self._announcements.items():
            if origin == exclude_origin:
                continue
            for neighbor, cost in ann.links:
                if neighbor == origin:
                    continue
                graph.add_edge(origin, neighbor, cost)
        return graph

    def __len__(self) -> int:
        return len(self._announcements)


@dataclass
class ProtocolStats:
    """Aggregate traffic counters for the link-state protocol."""

    announcements_sent: int = 0
    announcement_bits: int = 0
    flood_deliveries: int = 0
    announcements_lost: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.announcements_sent = 0
        self.announcement_bits = 0
        self.flood_deliveries = 0
        self.announcements_lost = 0


class LinkStateProtocol:
    """Epoch-granularity simulation of overlay link-state flooding.

    Parameters
    ----------
    n:
        Number of overlay nodes.
    announce_interval_s:
        ``T_announce``, the period between successive announcements by a
        node (20 s in the paper).
    """

    def __init__(self, n: int, announce_interval_s: float = 20.0):
        if n < 1:
            raise ValidationError(f"n must be >= 1, got {n}")
        self.n = int(n)
        self.announce_interval_s = check_positive(
            announce_interval_s, "announce_interval_s"
        )
        self.databases: List[TopologyDatabase] = [TopologyDatabase(n) for _ in range(n)]
        self._sequence: List[int] = [0] * n
        self.stats = ProtocolStats()
        self._loss_probability = 0.0
        self._loss_rng: Optional[np.random.Generator] = None

    def configure_loss(self, probability: float, rng: np.random.Generator) -> None:
        """Enable probabilistic per-recipient loss of flooded announcements.

        Each non-origin recipient of every broadcast independently drops
        the announcement with ``probability`` (the origin always keeps
        its own state).  Per broadcast, one uniform is drawn per
        recipient in sorted order, so the loss pattern is a deterministic
        function of the broadcast schedule and ``rng``'s seed.
        """
        probability = float(probability)
        if not 0.0 <= probability < 1.0:
            raise ValidationError("loss probability must be in [0, 1)")
        self._loss_probability = probability
        self._loss_rng = rng

    def next_sequence(self, origin: int) -> int:
        """Allocate the next LSA sequence number for ``origin``."""
        check_index(origin, self.n, "origin")
        self._sequence[origin] += 1
        return self._sequence[origin]

    def broadcast(
        self,
        origin: int,
        links: Dict[int, float],
        *,
        active: Optional[Iterable[int]] = None,
        timestamp: float = 0.0,
    ) -> LinkStateAnnouncement:
        """Issue and flood an announcement of ``origin``'s current links.

        Parameters
        ----------
        origin:
            Announcing node.
        links:
            Mapping of neighbour -> announced cost.
        active:
            The set of nodes currently ON; only they receive the flood.
            Defaults to all nodes.
        timestamp:
            Simulated time of the announcement.

        Returns
        -------
        LinkStateAnnouncement
            The announcement that was flooded.
        """
        check_index(origin, self.n, "origin")
        announcement = LinkStateAnnouncement.from_dict(
            origin, self.next_sequence(origin), links, timestamp
        )
        recipients = set(active) if active is not None else set(range(self.n))
        recipients.add(origin)
        if self._loss_rng is not None and self._loss_probability > 0.0:
            others = sorted(recipients - {origin})
            delivered = delivery_outcomes(
                self._loss_rng, len(others), self._loss_probability
            )
            lost = [node for node, kept in zip(others, delivered) if not kept]
            recipients.difference_update(lost)
            self.stats.announcements_lost += len(lost)
        for node in recipients:
            if self.databases[node].insert(announcement):
                self.stats.flood_deliveries += 1
        self.stats.announcements_sent += 1
        self.stats.announcement_bits += announcement.size_bits
        return announcement

    def withdraw(self, origin: int, *, active: Optional[Iterable[int]] = None) -> None:
        """Flood an empty announcement for ``origin`` (node left / links down)."""
        self.broadcast(origin, {}, active=active)

    def purge(self, origin: int) -> None:
        """Remove ``origin`` from every database without flooding.

        Models the eventual timeout of a crashed node's state.
        """
        for db in self.databases:
            db.remove_origin(origin)

    def view_of(self, node: int, *, residual_for: Optional[int] = None) -> OverlayGraph:
        """The overlay graph as seen by ``node``'s topology database."""
        check_index(node, self.n, "node")
        return self.databases[node].build_graph(exclude_origin=residual_for)

    def traffic_rate_bps(self, k: int) -> float:
        """Per-node protocol traffic rate for a node announcing ``k`` links."""
        return announcement_size_bits(k) / self.announce_interval_s
