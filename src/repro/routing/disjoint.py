"""Disjoint overlay paths.

The real-time traffic application of Section 6.2 sends redundant copies of
a stream over multiple *disjoint* overlay paths so that at least one copy
arrives before the playout deadline.  Fig. 11 reports how the number of
disjoint paths between a source and target grows with the neighbour budget
``k``.

We compute edge-disjoint (optionally internally-vertex-disjoint) paths that
are additionally constrained to leave the source through *distinct
first-hop neighbours*, matching the application's use of its k first-hop
EGOIST neighbours as redirection points.  Counting is done via max-flow on
a unit-capacity transformation.
"""

from __future__ import annotations

from typing import List, Optional

import networkx as nx

from repro.routing.graph import OverlayGraph
from repro.util.validation import ValidationError, check_index


def _unit_capacity_digraph(
    graph: OverlayGraph, vertex_disjoint: bool
) -> nx.DiGraph:
    """Build a unit-capacity digraph (with node splitting if vertex-disjoint)."""
    flow_graph = nx.DiGraph()
    if vertex_disjoint:
        # Split every node v into v_in -> v_out with capacity 1 so that at
        # most one path may traverse it.
        for node in range(graph.n):
            flow_graph.add_edge(f"{node}_in", f"{node}_out", capacity=1)
        for u, v, _w in graph.edges():
            flow_graph.add_edge(f"{u}_out", f"{v}_in", capacity=1)
    else:
        for u, v, _w in graph.edges():
            flow_graph.add_edge(u, v, capacity=1)
    return flow_graph


def count_disjoint_paths(
    graph: OverlayGraph,
    src: int,
    dst: int,
    *,
    vertex_disjoint: bool = False,
    max_paths: Optional[int] = None,
) -> int:
    """Number of edge- (or vertex-) disjoint directed paths ``src -> dst``.

    Parameters
    ----------
    graph:
        Overlay graph.
    src, dst:
        Endpoints (must differ).
    vertex_disjoint:
        If True, paths may not share intermediate nodes either.
    max_paths:
        Optional cap; useful when only "at least k" matters.
    """
    check_index(src, graph.n, "src")
    check_index(dst, graph.n, "dst")
    if src == dst:
        raise ValidationError("src and dst must differ")
    flow_graph = _unit_capacity_digraph(graph, vertex_disjoint)
    source = f"{src}_out" if vertex_disjoint else src
    target = f"{dst}_in" if vertex_disjoint else dst
    if source not in flow_graph or target not in flow_graph:
        return 0
    value, _flow = nx.maximum_flow(flow_graph, source, target)
    value = int(value)
    if max_paths is not None:
        value = min(value, int(max_paths))
    return value


def disjoint_paths(
    graph: OverlayGraph,
    src: int,
    dst: int,
    *,
    vertex_disjoint: bool = False,
) -> List[List[int]]:
    """Extract a maximum set of disjoint paths as explicit node lists.

    The paths are reconstructed from a max-flow decomposition; each path is
    a list of overlay node ids starting at ``src`` and ending at ``dst``.
    """
    check_index(src, graph.n, "src")
    check_index(dst, graph.n, "dst")
    if src == dst:
        raise ValidationError("src and dst must differ")
    flow_graph = _unit_capacity_digraph(graph, vertex_disjoint)
    source = f"{src}_out" if vertex_disjoint else src
    target = f"{dst}_in" if vertex_disjoint else dst
    if source not in flow_graph or target not in flow_graph:
        return []
    _value, flow = nx.maximum_flow(flow_graph, source, target)

    # Build the residual "used edge" adjacency from the flow assignment.
    used = {}
    for u, targets in flow.items():
        for v, f in targets.items():
            if f > 0:
                used.setdefault(u, []).append(v)

    def _to_node(label) -> Optional[int]:
        if isinstance(label, int):
            return label
        name, _suffix = str(label).rsplit("_", 1)
        return int(name)

    paths: List[List[int]] = []
    while used.get(source):
        # Walk one unit of flow from source to target.
        walk = [source]
        current = source
        while current != target:
            nxt = used[current].pop()
            walk.append(nxt)
            current = nxt
        # Collapse split nodes and deduplicate consecutive repeats.
        collapsed: List[int] = []
        for label in walk:
            node = _to_node(label)
            if not collapsed or collapsed[-1] != node:
                collapsed.append(node)
        paths.append(collapsed)
    return paths


def first_hop_disjoint_count(
    graph: OverlayGraph, src: int, dst: int
) -> int:
    """Disjoint paths from ``src`` to ``dst`` that use distinct first hops.

    This matches the application scenario: the source opens one session per
    first-hop EGOIST neighbour, so the relevant count is bounded by the
    out-degree of ``src`` and by the edge-disjoint path count.
    """
    total = count_disjoint_paths(graph, src, dst, vertex_disjoint=False)
    return min(total, graph.out_degree(src))
