"""Link-state protocol message formats and size accounting.

Section 4.3 of the paper gives the exact message sizes used for its
overhead analysis:

* link-state announcements: 192 bits of header and padding plus 32 bits
  per announced neighbour, broadcast every ``T_announce`` (20 s in the
  paper's deployment);
* ICMP ping messages: 320 bits each (see :mod:`repro.netsim.probing`);
* coordinate queries: 320 + 32 * n bits.

The dataclasses here are the in-simulator representation; the size helpers
feed the overhead accounting of :mod:`repro.core.overhead`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from repro.util.validation import ValidationError

#: Header + padding of one link-state announcement, in bits.
LSA_HEADER_BITS = 192

#: Payload per announced neighbour (neighbour id + link cost), in bits.
LSA_PER_NEIGHBOR_BITS = 32

#: Heartbeat message size used on aggressively monitored backbone links.
HEARTBEAT_BITS = 128


@dataclass(frozen=True)
class LinkStateAnnouncement:
    """One node's broadcast of its established links and their costs.

    Attributes
    ----------
    origin:
        Node issuing the announcement.
    sequence:
        Monotonically increasing per-origin sequence number; receivers keep
        only the freshest announcement per origin.
    links:
        Mapping from neighbour id to announced link cost.  For honest nodes
        this is the measured cost; cheaters may announce inflated values
        (see :mod:`repro.core.cheating`).
    timestamp:
        Simulated time at which the announcement was issued (seconds).
    """

    origin: int
    sequence: int
    links: Tuple[Tuple[int, float], ...]
    timestamp: float = 0.0

    @classmethod
    def from_dict(
        cls, origin: int, sequence: int, links: Dict[int, float], timestamp: float = 0.0
    ) -> "LinkStateAnnouncement":
        """Build an announcement from a neighbour->cost mapping."""
        if origin < 0:
            raise ValidationError("origin must be non-negative")
        if sequence < 0:
            raise ValidationError("sequence must be non-negative")
        ordered = tuple(sorted((int(v), float(c)) for v, c in links.items()))
        return cls(origin=int(origin), sequence=int(sequence), links=ordered, timestamp=float(timestamp))

    def links_dict(self) -> Dict[int, float]:
        """Announced links as a mutable dict."""
        return {v: c for v, c in self.links}

    @property
    def size_bits(self) -> int:
        """Wire size of this announcement in bits (Section 4.3 formula)."""
        return LSA_HEADER_BITS + LSA_PER_NEIGHBOR_BITS * len(self.links)


def announcement_size_bits(num_neighbors: int) -> int:
    """Wire size (bits) of an LSA announcing ``num_neighbors`` links."""
    if num_neighbors < 0:
        raise ValidationError("num_neighbors must be non-negative")
    return LSA_HEADER_BITS + LSA_PER_NEIGHBOR_BITS * num_neighbors


def linkstate_rate_bps(num_neighbors: int, announce_interval_s: float) -> float:
    """Per-node link-state traffic rate in bits per second.

    This is the paper's ``(192 + 32k) / T_announce`` expression.
    """
    if announce_interval_s <= 0:
        raise ValidationError("announce_interval_s must be positive")
    return announcement_size_bits(num_neighbors) / float(announce_interval_s)


def delivery_outcomes(
    rng: np.random.Generator, count: int, loss_probability: float
) -> np.ndarray:
    """Per-recipient delivery fate of one flooded message.

    Draws exactly ``count`` uniforms from ``rng`` — one per recipient, in
    the caller's recipient order — and returns a boolean array where
    ``True`` means delivered.  The fixed draw count keeps the consumed
    random stream a pure function of the broadcast schedule, so loss
    patterns are reproducible across runs and execution paths.
    """
    loss = float(loss_probability)
    if not 0.0 <= loss < 1.0:
        raise ValidationError("loss_probability must be in [0, 1)")
    if int(count) < 0:
        raise ValidationError("count must be non-negative")
    return rng.random(int(count)) >= loss


@dataclass(frozen=True)
class Heartbeat:
    """Keep-alive exchanged on aggressively monitored backbone links."""

    src: int
    dst: int
    timestamp: float = 0.0

    @property
    def size_bits(self) -> int:
        """Wire size of a heartbeat in bits."""
        return HEARTBEAT_BITS
