"""Maximum-bottleneck-bandwidth ("widest path") routing.

For the available-bandwidth metric the paper defines the bandwidth of a
path as the minimum available bandwidth over its edges, and the bandwidth
between two nodes as the maximum over all connecting paths — the classic
"Maximum Bottleneck Bandwidth" problem solved with a simple modification of
Dijkstra's algorithm (Section 4.1).

Two implementations coexist, mirroring the additive metrics:

* a heap-based per-source search (:func:`widest_path_bandwidths_from`),
  used for single-source queries and path extraction, and kept as the
  reference path behind ``batched=False``;
* batched dense max-min closures under the ``(max, min)`` semiring.
  Bottleneck values are pure selections of edge weights — no
  floating-point arithmetic is performed on them — so every closure
  algorithm is *bitwise identical* to the per-source search while
  replacing ``O(sources)`` interpreted Dijkstra runs with a handful of
  NumPy broadcasts.  :func:`bottleneck_closure` is the definitional
  repeated-squaring form (kept as the independent cross-check the
  parity tests pin the others against); :func:`bottleneck_closure_fw`
  (Floyd-Warshall pivoting) is the fast single-graph form behind
  ``batched=True``; and :func:`bottleneck_avoid_one` closes the
  residual graphs of *every* node of one overlay at once, which is what
  the multi-deployment sweep kernels in
  :mod:`repro.core.deployment_batch` build on.
"""

from __future__ import annotations

import heapq
from contextlib import contextmanager
from typing import Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.routing.graph import OverlayGraph
from repro.telemetry import runtime as telemetry
from repro.util.validation import check_index

#: Above this node count the dense closure's O(n^3) squarings stop paying
#: for themselves against the heap search; auto mode falls back to the
#: per-source loop.
CLOSURE_MAX_NODES = 256

#: Minimum source count for which the closure (which always computes every
#: row) beats per-source heap runs in auto mode.
_CLOSURE_MIN_SOURCES = 8

#: Soft cap on temporary cells per closure squaring chunk (~64 MB float64).
_CLOSURE_CHUNK_CELLS = 8_000_000

#: When set, auto mode always picks the per-source reference loop.
_REFERENCE_ONLY = False


@contextmanager
def reference_kernels() -> Iterator[None]:
    """Make auto-mode widest-path queries use the per-source loop.

    The sequential reference path of the multi-deployment sweep
    (``DeploymentBatch(batched=False)``) represents the pre-batching
    implementation end to end, so inside this context
    :func:`widest_path_bandwidths_multi` resolves ``batched=None`` to the
    heap loop.  Explicit ``batched=True``/``False`` arguments are
    unaffected, and both implementations are bitwise identical — the
    switch only moves wall-clock between the benchmark's two sides.
    """
    global _REFERENCE_ONLY
    previous = _REFERENCE_ONLY
    _REFERENCE_ONLY = True
    try:
        yield
    finally:
        _REFERENCE_ONLY = previous


def widest_path_bandwidths_from(graph: OverlayGraph, src: int) -> np.ndarray:
    """Maximum bottleneck bandwidth from ``src`` to every node.

    Edge weights are interpreted as available bandwidth (Mbps).  The source
    itself gets ``+inf``; unreachable nodes get 0.
    """
    check_index(src, graph.n, "src")
    best = np.zeros(graph.n)
    best[src] = np.inf
    # Max-heap via negated bottleneck values.
    heap: List[Tuple[float, int]] = [(-np.inf, src)]
    visited = np.zeros(graph.n, dtype=bool)
    while heap:
        neg_bw, u = heapq.heappop(heap)
        if visited[u]:
            continue
        visited[u] = True
        bw_u = -neg_bw
        for v, w in graph.successors(u).items():
            candidate = min(bw_u, w)
            if candidate > best[v]:
                best[v] = candidate
                heapq.heappush(heap, (-candidate, v))
    return best


def bandwidth_adjacency(graph: OverlayGraph) -> np.ndarray:
    """Dense bottleneck-adjacency matrix of ``graph``.

    Absent edges are 0 (unreachable in one hop — the identity of the
    ``max`` reduction) and the diagonal is ``+inf`` (a node reaches itself
    with unbounded bandwidth — the identity of the ``min`` reduction), so
    the matrix is ready for :func:`bottleneck_closure`.
    """
    adjacency = np.zeros((graph.n, graph.n))
    for u, v, w in graph.edges():
        adjacency[u, v] = w
    np.fill_diagonal(adjacency, np.inf)
    return adjacency


def bottleneck_closure(adjacency: np.ndarray) -> np.ndarray:
    """Max-min transitive closure of a dense bottleneck-adjacency matrix.

    ``adjacency`` must have 0 for absent edges and ``+inf`` on the
    diagonal (see :func:`bandwidth_adjacency`).  The result's ``[i, j]``
    entry is the maximum over all ``i -> j`` paths of the minimum edge
    weight along the path — exactly what the per-source Dijkstra variant
    computes, bit for bit, since both only ever *select* edge weights.

    Repeated squaring under the ``(max, min)`` semiring doubles the
    covered path length per pass (the ``+inf`` diagonal acts as the
    multiplicative identity, letting shorter paths survive), so the loop
    terminates after ``O(log diameter)`` passes.
    """
    closure = np.asarray(adjacency, dtype=float)
    n = closure.shape[0]
    if n <= 1:
        return closure.copy()
    rows_per_chunk = max(1, _CLOSURE_CHUNK_CELLS // (n * n))
    for _ in range(max(1, int(np.ceil(np.log2(n))))):
        squared = np.empty_like(closure)
        for start in range(0, n, rows_per_chunk):
            stop = min(start + rows_per_chunk, n)
            # squared[i, j] = max_m min(closure[i, m], closure[m, j])
            squared[start:stop] = np.minimum(
                closure[start:stop, :, None], closure[None, :, :]
            ).max(axis=1)
        if np.array_equal(squared, closure):
            return closure
        closure = squared
    return closure


def _apply_bottleneck_pivot(matrix: np.ndarray, pivot: int) -> None:
    """One Floyd-Warshall pivot under the ``(max, min)`` semiring.

    After the update, ``matrix[i, j]`` also covers paths routing through
    ``pivot``.  Valid in any application order (idempotent semiring), and
    — since bottleneck values are pure selections of edge weights — the
    result is bitwise identical to any other exact algorithm's.
    """
    cross = np.minimum(matrix[:, pivot][:, None], matrix[pivot, :][None, :])
    np.maximum(matrix, cross, out=matrix)


def bottleneck_closure_fw(adjacency: np.ndarray) -> np.ndarray:
    """Max-min closure via Floyd-Warshall pivoting.

    Same contract and bitwise-identical result as
    :func:`bottleneck_closure`; ``n`` rank-1 pivot broadcasts
    (``O(n^3)`` with tiny constants) instead of ``O(log diameter)``
    full matrix squarings, which wins for the small dense matrices the
    sweep kernels close per re-wiring opportunity.
    """
    closure = np.array(adjacency, dtype=float, copy=True)
    telemetry.kernel_call("widest.closure_fw", closure.shape[0])
    for pivot in range(closure.shape[0]):
        _apply_bottleneck_pivot(closure, pivot)
    return closure


def bottleneck_avoid_one(adjacency: np.ndarray) -> np.ndarray:
    """Max-min closures avoiding each vertex as an intermediate, at once.

    Returns a ``(n, n, n)`` tensor whose slice ``[i]`` equals the
    closure of the graph in which ``i`` may start or end a path but
    never relay one.  For row ``w != i`` this is exactly the closure of
    the *residual* graph without ``i``'s outgoing links — a path from
    ``w`` that uses an out-edge of ``i`` must first enter ``i``, making
    ``i`` an intermediate — which is what a best-response sweep needs
    for every re-wiring node of an unchanged overlay.  (Slice ``[i]``'s
    own row ``i`` does allow ``i``'s out-edges; residual consumers must
    take only rows ``w != i``.)

    Divide-and-conquer over the pivot set: each half is applied to a
    copy before recursing into the other half, so every leaf has seen
    every pivot except its own vertex.  Total work is ``O(n^2 * n log
    n)`` — asymptotically ``log n / n`` of closing the ``n`` residual
    graphs one by one — and, being pure max-min selections, each slice
    is bitwise identical to the per-residual closure.
    """
    base = np.array(adjacency, dtype=float, copy=True)
    n = base.shape[0]
    out = np.empty((n, n, n))
    if n == 0:
        return out
    telemetry.kernel_call("widest.avoid_one", n)

    def recurse(pivots: List[int], matrix: np.ndarray) -> None:
        if len(pivots) == 1:
            out[pivots[0]] = matrix
            return
        half = len(pivots) // 2
        left, right = pivots[:half], pivots[half:]
        branch = matrix.copy()
        for pivot in right:
            _apply_bottleneck_pivot(branch, pivot)
        recurse(left, branch)
        for pivot in left:
            _apply_bottleneck_pivot(matrix, pivot)
        recurse(right, matrix)

    recurse(list(range(n)), base)
    return out


class WidestRepairTables:
    """Shared lazily-built in-edge arrays for one overlay version.

    The max-min analogue of
    :class:`repro.routing.shortest_path.ShortestRepairTables`;
    bandwidths are used raw (a zero-bandwidth edge can never improve a
    bottleneck, exactly as in the heap search).
    """

    __slots__ = ("weights", "_edges")

    def __init__(self, adjacency: np.ndarray):
        self.weights = np.asarray(adjacency, dtype=float)
        self._edges = None

    @property
    def edges(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        if self._edges is None:
            from repro.routing.shortest_path import _inbound_tables

            self._edges = _inbound_tables(self.weights)
        return self._edges


def widest_inbound_tables(adjacency: np.ndarray) -> WidestRepairTables:
    """Shareable ``tables`` argument for :func:`repair_widest_rows`."""
    return WidestRepairTables(adjacency)


def repair_widest_rows(
    old: np.ndarray,
    sources: np.ndarray,
    changed: Iterable[int],
    adjacency: np.ndarray,
    *,
    exclude: Optional[int] = None,
    tables: Optional[Tuple[np.ndarray, np.ndarray]] = None,
) -> np.ndarray:
    """Repair stale widest-path rows after a set of nodes re-wired.

    The max-min analogue of
    :func:`repro.routing.shortest_path.repair_shortest_rows`: ``old``
    holds ``(rows, n)`` bottleneck-bandwidth rows (0 for unreachable,
    ``+inf`` at each row's own source) valid for an earlier graph
    version, ``changed`` names the nodes whose out-links changed since,
    and ``adjacency`` is the dense ``NaN``-absent announced-bandwidth
    matrix of the **new** graph.  Returns rows bit-identical to a fresh
    :func:`widest_path_bandwidths_multi` sweep.

    Bottleneck values are pure selections of edge weights, so exactness
    is immediate; the suspect rule mirrors the additive one with the
    objective flipped: any path through a changed link first reaches a
    changed node ``r`` over unchanged edges (its in-links are untouched)
    and path bottlenecks never increase along a path, so its bottleneck
    is at most ``min(old[h, r], bw(r, j))`` — with ``r``'s own row (old
    for vanished paths, freshly recomputed for new ones) supplying the
    second bound.  Destinations strictly wider than those bounds keep
    their bits; everything else is reset to 0 and re-relaxed (``max``
    over ``min(value[u], w)``) from the proven-final boundary until
    fixpoint.  ``exclude``/``tables`` share one dense overlay matrix and
    one in-edge table across many residual repairs, exactly as in the
    additive kernel.
    """
    old = np.asarray(old, dtype=float)
    rows, n = old.shape
    changed = sorted({int(c) for c in changed})
    repaired = old.copy()
    if rows == 0 or not changed:
        return repaired
    telemetry.kernel_call("widest.repair", rows)
    if tables is None:
        tables = widest_inbound_tables(adjacency)

    def bellman(values: np.ndarray) -> np.ndarray:
        src, w, starts, dests = tables.edges
        if not len(src):
            return values
        if exclude is not None:
            w = np.where(src == int(exclude), 0.0, w)
        while True:
            cand = np.minimum(values[:, src], w[None, :])
            seg = np.maximum.reduceat(cand, starts, axis=1)
            updated = values.copy()
            updated[:, dests] = np.maximum(values[:, dests], seg)
            if np.array_equal(updated, values):
                return values
            values = updated

    sources = np.asarray(sources, dtype=int)
    row_of = {int(s): i for i, s in enumerate(sources)}
    changed_rows = [row_of[r] for r in changed if r in row_of]
    if changed_rows:
        sub = np.zeros((len(changed_rows), n))
        sub[np.arange(len(changed_rows)), sources[changed_rows]] = old[
            changed_rows, sources[changed_rows]
        ]
        repaired[changed_rows] = bellman(sub)
    suspect = np.zeros((rows, n), dtype=bool)
    for r in changed:
        i = row_of.get(r)
        candidate = old <= old[:, [r]]
        if i is not None:
            bound = np.maximum(old[i], repaired[i])[None, :]
            candidate &= old <= bound
        suspect |= candidate
    if changed_rows:
        suspect[changed_rows, :] = False
    suspect[np.arange(rows), sources] = False
    if suspect.any():
        repaired = bellman(np.where(suspect, 0.0, repaired))
    return repaired


def widest_path_bandwidths_multi(
    graph: OverlayGraph, sources: List[int], *, batched: Optional[bool] = None
) -> np.ndarray:
    """Maximum bottleneck bandwidths from each of ``sources`` to every node.

    Returns a ``len(sources) x n`` matrix.  This is the matrix route-value
    entry point used by the vectorised best-response evaluator, which
    needs bottleneck values from every candidate first hop at once (the
    bandwidth analogue of
    :func:`repro.routing.shortest_path.shortest_path_costs_multi`).

    ``batched`` selects the implementation: ``True`` forces the dense
    max-min closure, ``False`` the per-source heap reference loop, and
    ``None`` (default) picks automatically — the closure whenever enough
    sources are requested on a small-enough graph to amortise its
    ``O(n^3)`` squarings.  Both paths return bitwise-identical matrices
    (parity is property-tested), so the switch is purely a performance
    choice.
    """
    if not sources:
        return np.zeros((0, graph.n))
    for src in sources:
        check_index(src, graph.n, "src")
    if batched is None:
        batched = (
            not _REFERENCE_ONLY
            and len(sources) >= _CLOSURE_MIN_SOURCES
            and graph.n <= CLOSURE_MAX_NODES
        )
    if not batched:
        return np.vstack(
            [widest_path_bandwidths_from(graph, src) for src in sources]
        )
    closure = bottleneck_closure_fw(bandwidth_adjacency(graph))
    return closure[np.asarray(sources, dtype=int), :]


def widest_path_tree(
    graph: OverlayGraph, src: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Widest paths with predecessor tracking.

    Returns ``(bandwidth, predecessor)``; ``predecessor[v] == -1`` for the
    source and unreachable nodes.
    """
    check_index(src, graph.n, "src")
    best = np.zeros(graph.n)
    pred = np.full(graph.n, -1, dtype=int)
    best[src] = np.inf
    heap: List[Tuple[float, int]] = [(-np.inf, src)]
    visited = np.zeros(graph.n, dtype=bool)
    while heap:
        neg_bw, u = heapq.heappop(heap)
        if visited[u]:
            continue
        visited[u] = True
        bw_u = -neg_bw
        for v, w in graph.successors(u).items():
            candidate = min(bw_u, w)
            if candidate > best[v]:
                best[v] = candidate
                pred[v] = u
                heapq.heappush(heap, (-candidate, v))
    return best, pred


def widest_path(graph: OverlayGraph, src: int, dst: int) -> Optional[List[int]]:
    """The maximum-bottleneck path from ``src`` to ``dst`` (or None)."""
    check_index(dst, graph.n, "dst")
    best, pred = widest_path_tree(graph, src)
    if best[dst] <= 0:
        return None
    path = [dst]
    while path[-1] != src:
        parent = int(pred[path[-1]])
        if parent < 0:
            return None
        path.append(parent)
    path.reverse()
    return path


def all_pairs_widest_bandwidth(
    graph: OverlayGraph, *, sources: Optional[List[int]] = None
) -> np.ndarray:
    """All-pairs maximum bottleneck bandwidth matrix.

    ``result[i, j]`` is the best achievable bottleneck bandwidth from ``i``
    to ``j`` over the overlay (0 if unreachable, +inf on the diagonal).
    """
    n = graph.n
    if sources is None:
        sources = list(range(n))
    result = np.zeros((n, n))
    np.fill_diagonal(result, np.inf)
    if sources:
        result[list(sources), :] = widest_path_bandwidths_multi(graph, list(sources))
    return result


def path_bottleneck(graph: OverlayGraph, path: List[int]) -> float:
    """Bottleneck (minimum edge weight) of ``path``."""
    if len(path) < 2:
        return float("inf")
    return min(graph.weight(u, v) for u, v in zip(path[:-1], path[1:]))
