"""Maximum-bottleneck-bandwidth ("widest path") routing.

For the available-bandwidth metric the paper defines the bandwidth of a
path as the minimum available bandwidth over its edges, and the bandwidth
between two nodes as the maximum over all connecting paths — the classic
"Maximum Bottleneck Bandwidth" problem solved with a simple modification of
Dijkstra's algorithm (Section 4.1).
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

import numpy as np

from repro.routing.graph import OverlayGraph
from repro.util.validation import check_index


def widest_path_bandwidths_from(graph: OverlayGraph, src: int) -> np.ndarray:
    """Maximum bottleneck bandwidth from ``src`` to every node.

    Edge weights are interpreted as available bandwidth (Mbps).  The source
    itself gets ``+inf``; unreachable nodes get 0.
    """
    check_index(src, graph.n, "src")
    best = np.zeros(graph.n)
    best[src] = np.inf
    # Max-heap via negated bottleneck values.
    heap: List[Tuple[float, int]] = [(-np.inf, src)]
    visited = np.zeros(graph.n, dtype=bool)
    while heap:
        neg_bw, u = heapq.heappop(heap)
        if visited[u]:
            continue
        visited[u] = True
        bw_u = -neg_bw
        for v, w in graph.successors(u).items():
            candidate = min(bw_u, w)
            if candidate > best[v]:
                best[v] = candidate
                heapq.heappush(heap, (-candidate, v))
    return best


def widest_path_bandwidths_multi(
    graph: OverlayGraph, sources: List[int]
) -> np.ndarray:
    """Maximum bottleneck bandwidths from each of ``sources`` to every node.

    Returns a ``len(sources) x n`` matrix.  This is the matrix route-value
    entry point used by the vectorised best-response evaluator, which
    needs bottleneck values from every candidate first hop at once (the
    bandwidth analogue of
    :func:`repro.routing.shortest_path.shortest_path_costs_multi`).
    """
    if not sources:
        return np.zeros((0, graph.n))
    return np.vstack([widest_path_bandwidths_from(graph, src) for src in sources])


def widest_path_tree(
    graph: OverlayGraph, src: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Widest paths with predecessor tracking.

    Returns ``(bandwidth, predecessor)``; ``predecessor[v] == -1`` for the
    source and unreachable nodes.
    """
    check_index(src, graph.n, "src")
    best = np.zeros(graph.n)
    pred = np.full(graph.n, -1, dtype=int)
    best[src] = np.inf
    heap: List[Tuple[float, int]] = [(-np.inf, src)]
    visited = np.zeros(graph.n, dtype=bool)
    while heap:
        neg_bw, u = heapq.heappop(heap)
        if visited[u]:
            continue
        visited[u] = True
        bw_u = -neg_bw
        for v, w in graph.successors(u).items():
            candidate = min(bw_u, w)
            if candidate > best[v]:
                best[v] = candidate
                pred[v] = u
                heapq.heappush(heap, (-candidate, v))
    return best, pred


def widest_path(graph: OverlayGraph, src: int, dst: int) -> Optional[List[int]]:
    """The maximum-bottleneck path from ``src`` to ``dst`` (or None)."""
    check_index(dst, graph.n, "dst")
    best, pred = widest_path_tree(graph, src)
    if best[dst] <= 0:
        return None
    path = [dst]
    while path[-1] != src:
        parent = int(pred[path[-1]])
        if parent < 0:
            return None
        path.append(parent)
    path.reverse()
    return path


def all_pairs_widest_bandwidth(
    graph: OverlayGraph, *, sources: Optional[List[int]] = None
) -> np.ndarray:
    """All-pairs maximum bottleneck bandwidth matrix.

    ``result[i, j]`` is the best achievable bottleneck bandwidth from ``i``
    to ``j`` over the overlay (0 if unreachable, +inf on the diagonal).
    """
    n = graph.n
    if sources is None:
        sources = list(range(n))
    result = np.zeros((n, n))
    np.fill_diagonal(result, np.inf)
    if sources:
        result[list(sources), :] = widest_path_bandwidths_multi(graph, list(sources))
    return result


def path_bottleneck(graph: OverlayGraph, path: List[int]) -> float:
    """Bottleneck (minimum edge weight) of ``path``."""
    if len(path) < 2:
        return float("inf")
    return min(graph.weight(u, v) for u, v in zip(path[:-1], path[1:]))
