"""Overlay routing substrate.

EGOIST nodes run a link-state routing protocol at the overlay layer: each
node periodically floods the identities and costs of its k established
links, every node assembles the full overlay graph from the received
announcements, and shortest-path (or widest-path, for the bandwidth
metric) routes are computed over that graph.

* :mod:`repro.routing.messages` — link-state announcement wire format and
  size accounting (Section 4.3).
* :mod:`repro.routing.linkstate` — the flooding protocol and per-node
  topology databases.
* :mod:`repro.routing.shortest_path` — Dijkstra / all-pairs shortest paths
  with additive costs (delay, node load).
* :mod:`repro.routing.widest_path` — maximum-bottleneck-bandwidth routing
  (modified Dijkstra), used by the available-bandwidth metric.
* :mod:`repro.routing.disjoint` — edge/vertex-disjoint path extraction used
  by the real-time application (Fig. 11).
"""

from repro.routing.graph import OverlayGraph
from repro.routing.messages import LinkStateAnnouncement, announcement_size_bits
from repro.routing.linkstate import LinkStateProtocol, TopologyDatabase
from repro.routing.shortest_path import (
    all_pairs_shortest_costs,
    shortest_path,
    shortest_path_costs_from,
    shortest_path_tree,
)
from repro.routing.widest_path import (
    all_pairs_widest_bandwidth,
    widest_path,
    widest_path_bandwidths_from,
)
from repro.routing.disjoint import count_disjoint_paths, disjoint_paths
from repro.routing.forwarding import (
    DeliveryReport,
    DeliveryStatus,
    ForwardingTable,
    OverlayForwarder,
    RoutingObjective,
)

__all__ = [
    "DeliveryReport",
    "DeliveryStatus",
    "ForwardingTable",
    "OverlayForwarder",
    "RoutingObjective",
    "OverlayGraph",
    "LinkStateAnnouncement",
    "announcement_size_bits",
    "LinkStateProtocol",
    "TopologyDatabase",
    "all_pairs_shortest_costs",
    "shortest_path",
    "shortest_path_costs_from",
    "shortest_path_tree",
    "all_pairs_widest_bandwidth",
    "widest_path",
    "widest_path_bandwidths_from",
    "count_disjoint_paths",
    "disjoint_paths",
]
