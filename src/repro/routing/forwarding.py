"""The overlay data plane: forwarding tables and hop-by-hop delivery.

The control plane (link-state flooding + shortest/widest path computation)
tells every node *which* routes exist; this module provides the data plane
an overlay routing system needs on top of it:

* :class:`ForwardingTable` — a node's next-hop table, built from its view
  of the overlay graph under either the delay-style (shortest path) or the
  bandwidth-style (widest path) objective;
* :class:`OverlayForwarder` — hop-by-hop delivery of messages across the
  overlay using each intermediate node's *own* forwarding table (as a real
  deployment would), with TTL and loop protection;
* delivery statistics (hops, accumulated cost, success/failure reasons)
  used by the integration tests to check that the control and data planes
  agree.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.routing.graph import OverlayGraph
from repro.routing.shortest_path import shortest_path_tree
from repro.routing.widest_path import widest_path_tree
from repro.util.validation import ValidationError, check_index


class RoutingObjective(enum.Enum):
    """Which route-selection rule a forwarding table encodes."""

    SHORTEST_PATH = "shortest-path"
    WIDEST_PATH = "widest-path"


@dataclass(frozen=True)
class ForwardingEntry:
    """One row of a forwarding table."""

    destination: int
    next_hop: int
    metric: float


class ForwardingTable:
    """Next-hop table of one overlay node.

    Parameters
    ----------
    node:
        The node owning the table.
    graph:
        The overlay graph as this node knows it (typically reconstructed
        from its link-state database).
    objective:
        Shortest-path (additive cost) or widest-path (bottleneck bandwidth).
    """

    def __init__(
        self,
        node: int,
        graph: OverlayGraph,
        objective: RoutingObjective = RoutingObjective.SHORTEST_PATH,
    ):
        check_index(node, graph.n, "node")
        self.node = int(node)
        self.objective = objective
        self._entries: Dict[int, ForwardingEntry] = {}
        self._build(graph)

    def _build(self, graph: OverlayGraph) -> None:
        if self.objective is RoutingObjective.SHORTEST_PATH:
            metric, pred = shortest_path_tree(graph, self.node)
            reachable = np.isfinite(metric)
        else:
            metric, pred = widest_path_tree(graph, self.node)
            reachable = metric > 0
        for dst in range(graph.n):
            if dst == self.node or not reachable[dst]:
                continue
            next_hop = self._first_hop(pred, dst)
            if next_hop is None:
                continue
            self._entries[dst] = ForwardingEntry(
                destination=dst, next_hop=next_hop, metric=float(metric[dst])
            )

    def _first_hop(self, pred: np.ndarray, dst: int) -> Optional[int]:
        """Walk the predecessor tree back from ``dst`` to find the first hop."""
        current = dst
        previous = None
        while current != self.node:
            parent = int(pred[current])
            if parent < 0:
                return None
            previous = current
            current = parent
        return previous

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def next_hop(self, destination: int) -> Optional[int]:
        """Next hop towards ``destination`` (None if unreachable)."""
        entry = self._entries.get(int(destination))
        return entry.next_hop if entry is not None else None

    def metric_to(self, destination: int) -> Optional[float]:
        """Route metric towards ``destination`` (None if unreachable)."""
        entry = self._entries.get(int(destination))
        return entry.metric if entry is not None else None

    def entries(self) -> List[ForwardingEntry]:
        """All entries, sorted by destination."""
        return [self._entries[d] for d in sorted(self._entries)]

    def reachable_destinations(self) -> List[int]:
        """Destinations with a route."""
        return sorted(self._entries)

    def __len__(self) -> int:
        return len(self._entries)


class DeliveryStatus(enum.Enum):
    """Outcome of a hop-by-hop delivery attempt."""

    DELIVERED = "delivered"
    NO_ROUTE = "no-route"
    TTL_EXPIRED = "ttl-expired"
    LOOP_DETECTED = "loop-detected"


@dataclass
class DeliveryReport:
    """Result of forwarding one message across the overlay."""

    source: int
    destination: int
    status: DeliveryStatus
    path: List[int] = field(default_factory=list)
    cost: float = 0.0

    @property
    def delivered(self) -> bool:
        """True if the message reached its destination."""
        return self.status is DeliveryStatus.DELIVERED

    @property
    def hops(self) -> int:
        """Number of overlay hops traversed."""
        return max(0, len(self.path) - 1)


class OverlayForwarder:
    """Hop-by-hop message delivery over per-node forwarding tables.

    Each node forwards using its *own* table, exactly as a deployment
    would; if the per-node views are consistent (same link-state database)
    the traversed path matches the source's end-to-end route, and the
    integration tests assert exactly that.
    """

    def __init__(
        self,
        graph: OverlayGraph,
        *,
        objective: RoutingObjective = RoutingObjective.SHORTEST_PATH,
        tables: Optional[Dict[int, ForwardingTable]] = None,
    ):
        self.graph = graph
        self.objective = objective
        if tables is None:
            tables = {
                node: ForwardingTable(node, graph, objective)
                for node in range(graph.n)
            }
        self.tables = tables

    def deliver(
        self, source: int, destination: int, *, ttl: Optional[int] = None
    ) -> DeliveryReport:
        """Forward a message from ``source`` to ``destination``.

        Parameters
        ----------
        source, destination:
            Overlay endpoints.
        ttl:
            Maximum number of overlay hops; defaults to ``n`` (any simple
            path fits within that).
        """
        check_index(source, self.graph.n, "source")
        check_index(destination, self.graph.n, "destination")
        if source == destination:
            raise ValidationError("source and destination must differ")
        ttl = int(ttl) if ttl is not None else self.graph.n
        path = [source]
        cost = 0.0
        current = source
        visited = {source}
        while current != destination:
            if len(path) - 1 >= ttl:
                return DeliveryReport(source, destination, DeliveryStatus.TTL_EXPIRED, path, cost)
            table = self.tables.get(current)
            next_hop = table.next_hop(destination) if table is not None else None
            if next_hop is None or not self.graph.has_edge(current, next_hop):
                return DeliveryReport(source, destination, DeliveryStatus.NO_ROUTE, path, cost)
            cost += self.graph.weight(current, next_hop)
            current = next_hop
            path.append(current)
            if current in visited and current != destination:
                return DeliveryReport(source, destination, DeliveryStatus.LOOP_DETECTED, path, cost)
            visited.add(current)
        return DeliveryReport(source, destination, DeliveryStatus.DELIVERED, path, cost)

    def delivery_ratio(self, pairs) -> float:
        """Fraction of (source, destination) pairs successfully delivered."""
        pairs = list(pairs)
        if not pairs:
            return 0.0
        delivered = sum(1 for s, d in pairs if self.deliver(s, d).delivered)
        return delivered / len(pairs)
