"""The overlay graph: a directed, weighted adjacency structure.

:class:`OverlayGraph` is the common currency between the wiring policies
(:mod:`repro.core`), the routing algorithms (:mod:`repro.routing`), and the
link-state protocol.  It is a thin, fast structure over per-node adjacency
dictionaries with conversion to/from :mod:`networkx` for interoperability
and debugging.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

import networkx as nx
import numpy as np

from repro.util.validation import ValidationError, check_index


class OverlayGraph:
    """A directed overlay topology with weighted edges.

    Nodes are integers ``0 .. n-1``; a directed edge ``(u, v)`` carries a
    single float weight (delay in ms, node load, or available bandwidth in
    Mbps depending on the metric in use).

    Parameters
    ----------
    n:
        Number of overlay nodes.
    """

    def __init__(self, n: int):
        if n < 1:
            raise ValidationError(f"n must be >= 1, got {n}")
        self.n = int(n)
        self._succ: List[Dict[int, float]] = [dict() for _ in range(self.n)]
        self._pred: List[Set[int]] = [set() for _ in range(self.n)]

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add_edge(self, u: int, v: int, weight: float) -> None:
        """Add (or overwrite) the directed edge ``u -> v`` with ``weight``."""
        check_index(u, self.n, "u")
        check_index(v, self.n, "v")
        if u == v:
            raise ValidationError("self-loops are not allowed in the overlay")
        weight = float(weight)
        if weight < 0:
            raise ValidationError("edge weights must be non-negative")
        self._succ[u][v] = weight
        self._pred[v].add(u)

    def remove_edge(self, u: int, v: int) -> None:
        """Remove the directed edge ``u -> v`` (no-op if absent)."""
        if v in self._succ[u]:
            del self._succ[u][v]
            self._pred[v].discard(u)

    def remove_node_edges(self, node: int) -> None:
        """Remove every edge incident (in either direction) to ``node``.

        Used when a node churns OFF: its links disappear from the overlay
        but the node identifier remains valid.
        """
        check_index(node, self.n, "node")
        for v in list(self._succ[node]):
            self.remove_edge(node, v)
        for u in list(self._pred[node]):
            self.remove_edge(u, node)

    def set_out_edges(self, u: int, edges: Dict[int, float]) -> None:
        """Replace all outgoing edges of ``u`` with ``edges`` (dst -> weight)."""
        for v in list(self._succ[u]):
            self.remove_edge(u, v)
        for v, w in edges.items():
            self.add_edge(u, v, w)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def has_edge(self, u: int, v: int) -> bool:
        """True if the directed edge ``u -> v`` exists."""
        return v in self._succ[u]

    def weight(self, u: int, v: int) -> float:
        """Weight of edge ``u -> v`` (KeyError if absent)."""
        return self._succ[u][v]

    def successors(self, u: int) -> Dict[int, float]:
        """Mapping of out-neighbours of ``u`` to edge weights (a copy)."""
        return dict(self._succ[u])

    def predecessors(self, v: int) -> Set[int]:
        """Set of nodes with an edge into ``v`` (a copy)."""
        return set(self._pred[v])

    def out_degree(self, u: int) -> int:
        """Number of outgoing edges of ``u``."""
        return len(self._succ[u])

    def in_degree(self, v: int) -> int:
        """Number of incoming edges of ``v``."""
        return len(self._pred[v])

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate over all edges as ``(u, v, weight)``."""
        for u in range(self.n):
            for v, w in self._succ[u].items():
                yield (u, v, w)

    def edge_count(self) -> int:
        """Total number of directed edges."""
        return sum(len(s) for s in self._succ)

    # ------------------------------------------------------------------ #
    # Derivation
    # ------------------------------------------------------------------ #
    @classmethod
    def from_weight_maps(
        cls, n: int, rows: Iterable[Tuple[int, Dict[int, float]]]
    ) -> "OverlayGraph":
        """Trusted bulk constructor from ``(node, {neighbor: weight})`` rows.

        Skips the per-edge validation of :meth:`add_edge`, so callers must
        supply pre-validated contents: indices in range, no self-loops,
        non-negative float weights (:class:`~repro.core.wiring.GlobalWiring`
        guarantees all three).  This is the fast path behind the engine's
        per-node residual-graph construction.
        """
        graph = cls(n)
        succ = graph._succ
        pred = graph._pred
        for u, weights in rows:
            if not weights:
                continue
            row = succ[u]
            row.update(weights)
            for v in row:
                pred[v].add(u)
        return graph

    def copy(self) -> "OverlayGraph":
        """Deep copy."""
        clone = OverlayGraph.__new__(OverlayGraph)
        clone.n = self.n
        clone._succ = [dict(row) for row in self._succ]
        clone._pred = [set(preds) for preds in self._pred]
        return clone

    def without_node_out_edges(self, node: int) -> "OverlayGraph":
        """Copy with ``node``'s *outgoing* edges removed.

        This is the residual graph ``G_{-i}`` a node reasons over when
        computing its best response: everyone else's wiring stays, its own
        outgoing links are up for re-selection.
        """
        clone = self.copy()
        for v in list(clone._succ[node]):
            clone.remove_edge(node, v)
        return clone

    def restricted(self, active: Iterable[int]) -> "OverlayGraph":
        """Copy with edges only among the ``active`` node set.

        Node identifiers are preserved; edges touching inactive nodes are
        dropped.  Used under churn, where OFF nodes take their links with
        them.
        """
        active_set = set(active)
        clone = OverlayGraph(self.n)
        for u, v, w in self.edges():
            if u in active_set and v in active_set:
                clone.add_edge(u, v, w)
        return clone

    def to_adjacency_matrix(self, absent: float = np.inf) -> np.ndarray:
        """Dense weight matrix with ``absent`` for missing edges, 0 diagonal."""
        mat = np.full((self.n, self.n), absent, dtype=float)
        np.fill_diagonal(mat, 0.0)
        for u, v, w in self.edges():
            mat[u, v] = w
        return mat

    def to_networkx(self) -> nx.DiGraph:
        """Convert to a :class:`networkx.DiGraph` with ``weight`` attributes."""
        graph = nx.DiGraph()
        graph.add_nodes_from(range(self.n))
        for u, v, w in self.edges():
            graph.add_edge(u, v, weight=w)
        return graph

    @classmethod
    def from_networkx(cls, graph: nx.DiGraph, weight: str = "weight") -> "OverlayGraph":
        """Build from a :class:`networkx.DiGraph` with integer node labels."""
        nodes = sorted(graph.nodes)
        if nodes != list(range(len(nodes))):
            raise ValidationError(
                "from_networkx requires nodes labelled 0..n-1; relabel first"
            )
        overlay = cls(len(nodes))
        for u, v, data in graph.edges(data=True):
            overlay.add_edge(int(u), int(v), float(data.get(weight, 1.0)))
        return overlay

    @classmethod
    def from_wirings(
        cls, n: int, wirings: Dict[int, Dict[int, float]]
    ) -> "OverlayGraph":
        """Build from a mapping ``node -> {neighbor: weight}``."""
        overlay = cls(n)
        for u, out in wirings.items():
            for v, w in out.items():
                overlay.add_edge(u, v, w)
        return overlay

    # ------------------------------------------------------------------ #
    # Connectivity helpers
    # ------------------------------------------------------------------ #
    def reachable_from(self, src: int) -> Set[int]:
        """Set of nodes reachable from ``src`` by directed paths (incl. src)."""
        seen = {src}
        stack = [src]
        while stack:
            u = stack.pop()
            for v in self._succ[u]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        return seen

    def is_strongly_connected(self, nodes: Optional[Iterable[int]] = None) -> bool:
        """True if every node (in ``nodes``) can reach every other.

        The full-membership case runs one csgraph Tarjan pass (C speed)
        instead of ``n`` Python traversals; node subsets keep the
        per-source reachability loop.
        """
        node_list = list(nodes) if nodes is not None else list(range(self.n))
        if len(node_list) <= 1:
            return True
        if len(set(node_list)) == self.n:
            from scipy.sparse import csr_matrix
            from scipy.sparse.csgraph import connected_components

            rows: List[int] = []
            cols: List[int] = []
            for u in range(self.n):
                succ = self._succ[u]
                rows.extend([u] * len(succ))
                cols.extend(succ.keys())
            matrix = csr_matrix(
                (np.ones(len(rows), dtype=np.int8), (rows, cols)),
                shape=(self.n, self.n),
            )
            count, _labels = connected_components(
                matrix, directed=True, connection="strong"
            )
            return int(count) == 1
        target = set(node_list)
        for src in node_list:
            if not target.issubset(self.reachable_from(src)):
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OverlayGraph(n={self.n}, edges={self.edge_count()})"
