"""Shortest-path routing over the overlay graph.

Routing in EGOIST is standard shortest-path routing over the selfishly
constructed overlay topology (the paper is explicit that it is *not*
selfish source routing).  Costs are additive: link delays for the delay
metric, or per-node loads mapped onto outgoing links for the node-load
metric.

Two implementations are provided:

* a heap-based Dijkstra over the :class:`~repro.routing.graph.OverlayGraph`
  adjacency structure (used for single-source queries and path extraction),
* a vectorised repeated-Dijkstra all-pairs routine returning a dense cost
  matrix (used by the cost functions in :mod:`repro.core.cost`, which need
  distances from every node to every destination).

Unreachable destinations get cost ``disconnection_cost`` — the paper's
``M >> n`` convention — so that best responses are strongly incentivised to
re-connect partitions.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra as _csgraph_dijkstra

from repro.routing.graph import OverlayGraph
from repro.util.validation import check_index

#: Default cost assigned to unreachable destinations ("M >> n" in the paper).
DEFAULT_DISCONNECTION_COST = float("inf")


def _to_csr(graph: OverlayGraph) -> csr_matrix:
    """Sparse adjacency matrix of ``graph`` (zero-weight edges preserved).

    Assembled directly in CSR form (indptr/indices/data) from the per-node
    adjacency, skipping the COO intermediate.  scipy's csgraph treats
    explicit zeros as absent edges unless told otherwise; we nudge zero
    weights to a tiny epsilon so that zero-cost links (possible under the
    node-load metric) stay routable.
    """
    n = graph.n
    indptr = np.zeros(n + 1, dtype=np.int64)
    indices: List[int] = []
    data: List[float] = []
    for u in range(n):
        succ = graph.successors(u)
        indptr[u + 1] = indptr[u] + len(succ)
        indices.extend(succ.keys())
        data.extend(w if w > 0 else 1e-12 for w in succ.values())
    return csr_matrix(
        (np.asarray(data, dtype=float), np.asarray(indices, dtype=np.int64), indptr),
        shape=(n, n),
    )


def shortest_path_costs_from(
    graph: OverlayGraph,
    src: int,
    *,
    disconnection_cost: float = DEFAULT_DISCONNECTION_COST,
) -> np.ndarray:
    """Single-source shortest-path costs from ``src`` to every node.

    Returns an array of length ``n`` with 0 at ``src`` and
    ``disconnection_cost`` for unreachable nodes.
    """
    check_index(src, graph.n, "src")
    dist = _csgraph_dijkstra(_to_csr(graph), directed=True, indices=src)
    dist = np.asarray(dist, dtype=float)
    if not np.isinf(disconnection_cost):
        dist[np.isinf(dist)] = disconnection_cost
    return dist


def shortest_path_costs_multi(
    graph: OverlayGraph,
    sources: List[int],
    *,
    disconnection_cost: float = DEFAULT_DISCONNECTION_COST,
) -> np.ndarray:
    """Shortest-path costs from each of ``sources`` to every node.

    Returns a ``len(sources) x n`` matrix.  This is the vectorised core
    used by the best-response evaluator, which needs routing values from
    every candidate first hop at once.
    """
    if not sources:
        return np.zeros((0, graph.n))
    for src in sources:
        check_index(src, graph.n, "src")
    dist = _csgraph_dijkstra(_to_csr(graph), directed=True, indices=sources)
    dist = np.atleast_2d(np.asarray(dist, dtype=float))
    if not np.isinf(disconnection_cost):
        dist[np.isinf(dist)] = disconnection_cost
    return dist


def shortest_path_tree(
    graph: OverlayGraph, src: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Single-source shortest paths with predecessor tracking.

    Returns ``(dist, predecessor)`` arrays; ``predecessor[v] == -1`` for the
    source and for unreachable nodes.
    """
    check_index(src, graph.n, "src")
    dist = np.full(graph.n, np.inf)
    pred = np.full(graph.n, -1, dtype=int)
    dist[src] = 0.0
    heap: List[Tuple[float, int]] = [(0.0, src)]
    visited = np.zeros(graph.n, dtype=bool)
    while heap:
        d, u = heapq.heappop(heap)
        if visited[u]:
            continue
        visited[u] = True
        for v, w in graph.successors(u).items():
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                pred[v] = u
                heapq.heappush(heap, (nd, v))
    return dist, pred


def shortest_path(
    graph: OverlayGraph, src: int, dst: int
) -> Optional[List[int]]:
    """The shortest path from ``src`` to ``dst`` as a node list, or None."""
    check_index(dst, graph.n, "dst")
    dist, pred = shortest_path_tree(graph, src)
    if np.isinf(dist[dst]):
        return None
    path = [dst]
    while path[-1] != src:
        parent = int(pred[path[-1]])
        if parent < 0:
            return None
        path.append(parent)
    path.reverse()
    return path


def all_pairs_shortest_costs(
    graph: OverlayGraph,
    *,
    disconnection_cost: float = DEFAULT_DISCONNECTION_COST,
    sources: Optional[List[int]] = None,
) -> np.ndarray:
    """All-pairs shortest-path cost matrix.

    Parameters
    ----------
    graph:
        Overlay graph with additive edge costs.
    disconnection_cost:
        Cost assigned to unreachable (source, destination) pairs.
    sources:
        Optional subset of sources to compute (rows for other sources are
        filled with ``disconnection_cost`` except their diagonal).  Useful
        when only a few nodes' costs are needed.

    Returns
    -------
    numpy.ndarray
        ``n x n`` matrix ``D`` with ``D[i, j]`` the overlay routing cost
        from ``i`` to ``j``.
    """
    n = graph.n
    if sources is None:
        sources = list(range(n))
    if np.isinf(disconnection_cost):
        result = np.full((n, n), np.inf)
    else:
        result = np.full((n, n), float(disconnection_cost))
    np.fill_diagonal(result, 0.0)
    if sources:
        result[sources, :] = shortest_path_costs_multi(
            graph, list(sources), disconnection_cost=disconnection_cost
        )
    return result


def path_cost(graph: OverlayGraph, path: List[int]) -> float:
    """Total additive cost of ``path`` (consecutive edges must exist)."""
    total = 0.0
    for u, v in zip(path[:-1], path[1:]):
        total += graph.weight(u, v)
    return total


def average_path_stretch(
    graph: OverlayGraph, direct_costs: np.ndarray
) -> float:
    """Mean ratio of overlay routing cost to the direct (one-hop) cost.

    ``direct_costs[i, j]`` is the cost of a hypothetical direct overlay
    link; the stretch measures how much the degree-constrained overlay
    inflates routing cost relative to a full mesh.  Pairs that are
    unreachable in the overlay are skipped.
    """
    overlay_costs = all_pairs_shortest_costs(graph)
    n = graph.n
    ratios = []
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            direct = direct_costs[i, j]
            routed = overlay_costs[i, j]
            if direct > 0 and np.isfinite(routed):
                ratios.append(routed / direct)
    return float(np.mean(ratios)) if ratios else float("inf")
