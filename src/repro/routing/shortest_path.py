"""Shortest-path routing over the overlay graph.

Routing in EGOIST is standard shortest-path routing over the selfishly
constructed overlay topology (the paper is explicit that it is *not*
selfish source routing).  Costs are additive: link delays for the delay
metric, or per-node loads mapped onto outgoing links for the node-load
metric.

Two implementations are provided:

* a heap-based Dijkstra over the :class:`~repro.routing.graph.OverlayGraph`
  adjacency structure (used for single-source queries and path extraction),
* a vectorised repeated-Dijkstra all-pairs routine returning a dense cost
  matrix (used by the cost functions in :mod:`repro.core.cost`, which need
  distances from every node to every destination).

Unreachable destinations get cost ``disconnection_cost`` — the paper's
``M >> n`` convention — so that best responses are strongly incentivised to
re-connect partitions.

A third entry point, :func:`repair_shortest_rows`, is the dynamic-SSSP
kernel behind the residual route cache's churn-time repairs: given
distance rows computed on an *earlier* version of the graph and the set
of nodes whose out-links changed since (one re-wire changes exactly one
node's out-links), it recomputes only the destinations whose values can
pass through changed links and returns rows bit-identical to a fresh
sweep of the new graph.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra as _csgraph_dijkstra

from repro.routing.graph import OverlayGraph
from repro.telemetry import runtime as telemetry
from repro.util.validation import check_index

#: Default cost assigned to unreachable destinations ("M >> n" in the paper).
DEFAULT_DISCONNECTION_COST = float("inf")


def _to_csr(graph: OverlayGraph) -> csr_matrix:
    """Sparse adjacency matrix of ``graph`` (zero-weight edges preserved).

    Assembled directly in CSR form (indptr/indices/data) from the per-node
    adjacency, skipping the COO intermediate.  scipy's csgraph treats
    explicit zeros as absent edges unless told otherwise; we nudge zero
    weights to a tiny epsilon so that zero-cost links (possible under the
    node-load metric) stay routable.
    """
    n = graph.n
    indptr = np.zeros(n + 1, dtype=np.int64)
    indices: List[int] = []
    data: List[float] = []
    for u in range(n):
        succ = graph.successors(u)
        indptr[u + 1] = indptr[u] + len(succ)
        indices.extend(succ.keys())
        data.extend(w if w > 0 else 1e-12 for w in succ.values())
    return csr_matrix(
        (np.asarray(data, dtype=float), np.asarray(indices, dtype=np.int64), indptr),
        shape=(n, n),
    )


def shortest_path_costs_from(
    graph: OverlayGraph,
    src: int,
    *,
    disconnection_cost: float = DEFAULT_DISCONNECTION_COST,
) -> np.ndarray:
    """Single-source shortest-path costs from ``src`` to every node.

    Returns an array of length ``n`` with 0 at ``src`` and
    ``disconnection_cost`` for unreachable nodes.
    """
    check_index(src, graph.n, "src")
    dist = _csgraph_dijkstra(_to_csr(graph), directed=True, indices=src)
    dist = np.asarray(dist, dtype=float)
    if not np.isinf(disconnection_cost):
        dist[np.isinf(dist)] = disconnection_cost
    return dist


def shortest_path_costs_multi(
    graph: OverlayGraph,
    sources: List[int],
    *,
    disconnection_cost: float = DEFAULT_DISCONNECTION_COST,
) -> np.ndarray:
    """Shortest-path costs from each of ``sources`` to every node.

    Returns a ``len(sources) x n`` matrix.  This is the vectorised core
    used by the best-response evaluator, which needs routing values from
    every candidate first hop at once.
    """
    if not sources:
        return np.zeros((0, graph.n))
    for src in sources:
        check_index(src, graph.n, "src")
    telemetry.kernel_call("shortest.multi", len(sources))
    dist = _csgraph_dijkstra(_to_csr(graph), directed=True, indices=sources)
    dist = np.atleast_2d(np.asarray(dist, dtype=float))
    if not np.isinf(disconnection_cost):
        dist[np.isinf(dist)] = disconnection_cost
    return dist


def _inbound_tables(
    weights: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Destination-grouped in-edge arrays of a dense NaN-absent matrix.

    Returns ``(src, w, starts, dests)``: the edge list sorted by
    destination (``src[e] -> dests-segment containing e`` with weight
    ``w[e]``), plus the ``reduceat`` segment starts and the distinct
    destinations that have in-edges at all.  One relaxation round is
    then a gather + segmented reduction — no padding to the maximum
    in-degree.  The diagonal is never an edge (the overlay has no
    self-loops).  Callers repairing many residual variants of one
    overlay build the tables once and mask per variant (see the
    ``exclude`` parameter of :func:`repair_shortest_rows`).
    """
    present = ~np.isnan(weights)
    np.fill_diagonal(present, False)
    dst, src = np.nonzero(present.T)  # destination-major edge order
    w = weights[src, dst]
    dests, starts = np.unique(dst, return_index=True)
    return src, w, starts, dests


class ShortestRepairTables:
    """Shared, lazily-built relaxation structures for one overlay version.

    Stores the effective-weight matrix once (the :func:`_to_csr`
    zero-nudge applied — which is what keeps repaired sums bit-identical
    to the fresh sweep) and materialises the destination-grouped in-edge
    arrays (Bellman rounds) and the source-major CSR (direct C-level
    sweeps) only when a repair actually takes that strategy, so sharing
    the tables across many small repairs never pays for the structures
    they skip.
    """

    __slots__ = ("weights", "_edges", "_csr")

    def __init__(self, adjacency: np.ndarray):
        weights = np.array(adjacency, dtype=float, copy=True)
        zero = ~np.isnan(weights) & (weights <= 0)
        weights[zero] = 1e-12
        self.weights = weights
        self._edges = None
        self._csr = None

    @property
    def edges(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        if self._edges is None:
            self._edges = _inbound_tables(self.weights)
        return self._edges

    @property
    def csr(self) -> csr_matrix:
        if self._csr is None:
            n = self.weights.shape[0]
            present = ~np.isnan(self.weights)
            np.fill_diagonal(present, False)
            out_src, out_dst = np.nonzero(present)
            indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(np.bincount(out_src, minlength=n), out=indptr[1:])
            self._csr = csr_matrix(
                (
                    self.weights[out_src, out_dst],
                    out_dst.astype(np.int64),
                    indptr,
                ),
                shape=(n, n),
            )
        return self._csr


def shortest_inbound_tables(adjacency: np.ndarray) -> ShortestRepairTables:
    """Shareable ``tables`` argument for :func:`repair_shortest_rows`."""
    return ShortestRepairTables(adjacency)


def repair_shortest_rows(
    old: np.ndarray,
    sources: np.ndarray,
    changed: Iterable[int],
    adjacency: np.ndarray,
    *,
    exclude: Optional[int] = None,
    tables: Optional[Tuple[np.ndarray, np.ndarray]] = None,
) -> np.ndarray:
    """Repair stale shortest-path rows after a set of nodes re-wired.

    Parameters
    ----------
    old:
        ``(rows, n)`` distance rows, each valid for an earlier version of
        the graph (``inf`` for unreachable — the
        :func:`shortest_path_costs_multi` default convention).
    sources:
        The source node of each row.
    changed:
        Nodes whose *out-links* changed between the old graph and
        ``adjacency`` (a re-wire changes exactly one node's out-links;
        membership-preserving epochs accumulate one entry per re-wire).
    adjacency:
        Dense ``n x n`` announced-weight matrix of the **new** graph,
        ``NaN`` marking absent edges.
    exclude:
        Optionally a node whose out-edges are treated as absent even if
        present in ``adjacency`` — the residual-graph convention, letting
        callers share one dense overlay matrix (and one set of in-edge
        ``tables``) across every node's residual repair instead of
        materialising per-node copies.
    tables:
        Optional precomputed :func:`shortest_inbound_tables` result for
        that sharing.

    Returns rows bit-identical to a fresh
    :func:`shortest_path_costs_multi` sweep of the new graph.

    Why an incremental update can be exact despite float addition being
    non-associative: Dijkstra's value for a destination is the minimum
    over all paths of the *left-associated* running sum — a well-defined
    function of the graph, because float ``+`` is monotone, so the min
    distributes over tail extension.  Any algorithm whose relaxations
    are tail extensions ``dist[u] + w`` therefore converges to the same
    bits.  The kernel re-relaxes (Bellman rounds) only a *suspect* set
    of cells, leaving everything else its old bits, which is sound
    because with positive weights running sums never decrease along a
    path, and prepending a prefix to a path never decreases its
    left-associated sum — so any old or new path through a changed link,
    first reaching changed node ``r`` over unchanged edges (``r``'s
    in-links are untouched), costs at least ``old[h, r]`` *and* at least
    ``r``'s own distance to the destination (old row for vanished paths,
    freshly recomputed row for new ones).  Destinations cheaper than
    those bounds keep their bits; the changed nodes' own rows are
    recomputed outright first, which is what supplies the new-row
    bounds.
    """
    old = np.asarray(old, dtype=float)
    rows, n = old.shape
    changed = sorted({int(c) for c in changed})
    repaired = old.copy()
    if rows == 0 or not changed:
        return repaired
    telemetry.kernel_call("shortest.repair", rows)
    if tables is None:
        tables = shortest_inbound_tables(adjacency)

    def sweep(indices: np.ndarray) -> np.ndarray:
        csr = tables.csr
        if exclude is not None:
            lo = int(csr.indptr[int(exclude)])
            hi = int(csr.indptr[int(exclude) + 1])
            if hi > lo:
                # An inf-weight edge is unusable for any finite distance,
                # so masking the excluded node's out-edges this way
                # yields the very same distances as removing them.
                data = csr.data.copy()
                data[lo:hi] = np.inf
                csr = csr_matrix((data, csr.indices, csr.indptr), shape=csr.shape)
        dist = _csgraph_dijkstra(csr, directed=True, indices=indices)
        return np.atleast_2d(np.asarray(dist, dtype=float))

    def bellman(values: np.ndarray) -> np.ndarray:
        src, w, starts, dests = tables.edges
        if not len(src):
            return values
        if exclude is not None:
            w = np.where(src == int(exclude), np.inf, w)
        while True:
            cand = values[:, src] + w[None, :]
            seg = np.minimum.reduceat(cand, starts, axis=1)
            updated = values.copy()
            updated[:, dests] = np.minimum(values[:, dests], seg)
            if np.array_equal(updated, values):
                return values
            values = updated

    sources = np.asarray(sources, dtype=int)
    # Strategy pre-screen on the coarse suspect rule (``old[j] >=
    # min_r old[r]``): when most of the matrix is suspect anyway — a
    # centrally-placed re-wire — the incremental rounds cannot beat one
    # C-level multi-source sweep of the shared CSR, which computes the
    # same min-over-paths function and is therefore equally bit-exact.
    coarse = old >= old[:, changed].min(axis=1)[:, None]
    if coarse.mean() > 0.45:
        return sweep(sources)
    row_of = {int(s): i for i, s in enumerate(sources)}
    # Phase 1: the changed nodes' own rows (every path from a changed
    # node starts on a changed out-link) — recomputed outright.
    changed_rows = [row_of[r] for r in changed if r in row_of]
    if changed_rows:
        repaired[changed_rows] = sweep(sources[changed_rows])
    # Phase 2: remaining rows, relaxed over the refined suspect set.
    suspect = np.zeros((rows, n), dtype=bool)
    for r in changed:
        i = row_of.get(r)
        candidate = old >= old[:, [r]]
        if i is not None:
            bound = np.minimum(old[i], repaired[i])[None, :]
            candidate &= old >= bound
        suspect |= candidate
    if changed_rows:
        suspect[changed_rows, :] = False
    suspect[np.arange(rows), sources] = False
    if not suspect.any():
        return repaired
    if suspect.mean() > 0.25:
        untouched = [i for i in range(rows) if i not in set(changed_rows)]
        if untouched:
            repaired[untouched] = sweep(sources[untouched])
        return repaired
    return bellman(np.where(suspect, np.inf, repaired))


def shortest_path_tree(
    graph: OverlayGraph, src: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Single-source shortest paths with predecessor tracking.

    Returns ``(dist, predecessor)`` arrays; ``predecessor[v] == -1`` for the
    source and for unreachable nodes.
    """
    check_index(src, graph.n, "src")
    dist = np.full(graph.n, np.inf)
    pred = np.full(graph.n, -1, dtype=int)
    dist[src] = 0.0
    heap: List[Tuple[float, int]] = [(0.0, src)]
    visited = np.zeros(graph.n, dtype=bool)
    while heap:
        d, u = heapq.heappop(heap)
        if visited[u]:
            continue
        visited[u] = True
        for v, w in graph.successors(u).items():
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                pred[v] = u
                heapq.heappush(heap, (nd, v))
    return dist, pred


def shortest_path(
    graph: OverlayGraph, src: int, dst: int
) -> Optional[List[int]]:
    """The shortest path from ``src`` to ``dst`` as a node list, or None."""
    check_index(dst, graph.n, "dst")
    dist, pred = shortest_path_tree(graph, src)
    if np.isinf(dist[dst]):
        return None
    path = [dst]
    while path[-1] != src:
        parent = int(pred[path[-1]])
        if parent < 0:
            return None
        path.append(parent)
    path.reverse()
    return path


def all_pairs_shortest_costs(
    graph: OverlayGraph,
    *,
    disconnection_cost: float = DEFAULT_DISCONNECTION_COST,
    sources: Optional[List[int]] = None,
) -> np.ndarray:
    """All-pairs shortest-path cost matrix.

    Parameters
    ----------
    graph:
        Overlay graph with additive edge costs.
    disconnection_cost:
        Cost assigned to unreachable (source, destination) pairs.
    sources:
        Optional subset of sources to compute (rows for other sources are
        filled with ``disconnection_cost`` except their diagonal).  Useful
        when only a few nodes' costs are needed.

    Returns
    -------
    numpy.ndarray
        ``n x n`` matrix ``D`` with ``D[i, j]`` the overlay routing cost
        from ``i`` to ``j``.
    """
    n = graph.n
    if sources is None:
        sources = list(range(n))
    if np.isinf(disconnection_cost):
        result = np.full((n, n), np.inf)
    else:
        result = np.full((n, n), float(disconnection_cost))
    np.fill_diagonal(result, 0.0)
    if sources:
        result[sources, :] = shortest_path_costs_multi(
            graph, list(sources), disconnection_cost=disconnection_cost
        )
    return result


def path_cost(graph: OverlayGraph, path: List[int]) -> float:
    """Total additive cost of ``path`` (consecutive edges must exist)."""
    total = 0.0
    for u, v in zip(path[:-1], path[1:]):
        total += graph.weight(u, v)
    return total


def average_path_stretch(
    graph: OverlayGraph, direct_costs: np.ndarray
) -> float:
    """Mean ratio of overlay routing cost to the direct (one-hop) cost.

    ``direct_costs[i, j]`` is the cost of a hypothetical direct overlay
    link; the stretch measures how much the degree-constrained overlay
    inflates routing cost relative to a full mesh.  Pairs that are
    unreachable in the overlay are skipped.
    """
    overlay_costs = all_pairs_shortest_costs(graph)
    n = graph.n
    ratios = []
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            direct = direct_costs[i, j]
            routed = overlay_costs[i, j]
            if direct > 0 and np.isfinite(routed):
                ratios.append(routed / direct)
    return float(np.mean(ratios)) if ratios else float("inf")
