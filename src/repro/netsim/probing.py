"""Active measurement: ping and pathChirp-like probing.

EGOIST estimates link costs either actively (ping for delay, pathChirp for
available bandwidth) or passively (pyxida coordinates; see
:mod:`repro.netsim.coordinates`).  The probers here simulate the active
tools: they sample the ground-truth substrate models, add realistic
measurement noise, average over multiple samples, and account for the bytes
they inject so the overhead analysis of Section 4.3 can be reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.netsim.bandwidth import BandwidthModel
from repro.netsim.delayspace import DelaySpace
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import ValidationError, check_positive

#: Size of one ICMP ECHO request or reply used by the paper's overhead
#: analysis (Section 4.3): 320 bits.
ICMP_MESSAGE_BITS = 320

#: Size of a pyxida-style HTTP query: 320 bits header plus 32 bits per node
#: whose coordinate distance is returned.
COORDINATE_QUERY_BASE_BITS = 320
COORDINATE_QUERY_PER_NODE_BITS = 32


@dataclass
class ProbeAccounting:
    """Running totals of measurement traffic injected by a prober."""

    messages: int = 0
    bits: int = 0

    def add(self, messages: int, bits: int) -> None:
        """Record ``messages`` probe messages totalling ``bits`` bits."""
        self.messages += int(messages)
        self.bits += int(bits)

    def reset(self) -> None:
        """Zero the counters (e.g. at an epoch boundary)."""
        self.messages = 0
        self.bits = 0


class PingProber:
    """Estimate one-way link delays with simulated ping.

    One-way delay is estimated as half the RTT averaged over
    ``samples_per_probe`` ping exchanges, exactly as in the paper.
    """

    def __init__(
        self,
        delay_space: DelaySpace,
        *,
        samples_per_probe: int = 5,
        rng: SeedLike = None,
    ):
        if samples_per_probe < 1:
            raise ValidationError("samples_per_probe must be >= 1")
        self.delay_space = delay_space
        self.samples_per_probe = int(samples_per_probe)
        self._rng = as_generator(rng)
        self.accounting = ProbeAccounting()

    def probe(self, src: int, dst: int) -> float:
        """Return the estimated one-way delay (ms) from ``src`` to ``dst``."""
        rtts = [
            self.delay_space.sample_rtt(src, dst, self._rng)
            for _ in range(self.samples_per_probe)
        ]
        # Each sample is one request + one reply.
        self.accounting.add(
            messages=2 * self.samples_per_probe,
            bits=2 * self.samples_per_probe * ICMP_MESSAGE_BITS,
        )
        return float(np.mean(rtts) / 2.0)

    def probe_all(self, src: int, exclude: Optional[set] = None) -> Dict[int, float]:
        """Probe ``src``'s delay to every other node (minus ``exclude``).

        This is the O(n) per-epoch candidate measurement a node performs
        before computing its best response.
        """
        exclude = exclude or set()
        estimates: Dict[int, float] = {}
        for dst in range(self.delay_space.size):
            if dst == src or dst in exclude:
                continue
            estimates[dst] = self.probe(src, dst)
        return estimates


class CoordinateProber:
    """Estimate delays by querying a virtual coordinate system.

    A single query returns the estimated distances from the querying node
    to every other node, so the injected traffic is
    ``320 + 32 * n`` bits per query (Section 4.3).
    """

    def __init__(self, coordinate_system) -> None:
        self.coordinates = coordinate_system
        self.accounting = ProbeAccounting()

    def probe_all(self, src: int, exclude: Optional[set] = None) -> Dict[int, float]:
        """Return estimated one-way delays from ``src`` to all other nodes."""
        exclude = exclude or set()
        n = self.coordinates.n
        self.accounting.add(
            messages=2,
            bits=COORDINATE_QUERY_BASE_BITS + COORDINATE_QUERY_PER_NODE_BITS * n,
        )
        return {
            dst: self.coordinates.estimate(src, dst)
            for dst in range(n)
            if dst != src and dst not in exclude
        }

    def probe(self, src: int, dst: int) -> float:
        """Single-destination estimate (still charged as one full query)."""
        return self.probe_all(src)[dst]


class ChirpProber:
    """Estimate directed available bandwidth with a pathChirp-like tool.

    pathChirp sends exponentially-spaced packet "chirps"; its probe load is
    small (the paper reports < 2% of the available bandwidth on the path).
    We model the estimate as the ground truth perturbed by a configurable
    relative error, and account probe traffic at the 2% figure.
    """

    def __init__(
        self,
        bandwidth_model: BandwidthModel,
        *,
        relative_error: float = 0.1,
        chirp_packets: int = 17,
        packet_bits: int = 8 * 1000,
        rng: SeedLike = None,
    ):
        check_positive(chirp_packets, "chirp_packets")
        self.bandwidth = bandwidth_model
        self.relative_error = float(relative_error)
        self.chirp_packets = int(chirp_packets)
        self.packet_bits = int(packet_bits)
        self._rng = as_generator(rng)
        self.accounting = ProbeAccounting()

    def probe(self, src: int, dst: int) -> float:
        """Estimated available bandwidth (Mbps) from ``src`` to ``dst``."""
        sample = self.bandwidth.sample(
            src, dst, relative_error=self.relative_error, rng=self._rng
        )
        self.accounting.add(
            messages=self.chirp_packets,
            bits=self.chirp_packets * self.packet_bits,
        )
        return sample.available_mbps

    def probe_all(self, src: int, exclude: Optional[set] = None) -> Dict[int, float]:
        """Probe available bandwidth from ``src`` to every other node."""
        exclude = exclude or set()
        return {
            dst: self.probe(src, dst)
            for dst in range(self.bandwidth.n)
            if dst != src and dst not in exclude
        }
