"""Underlay topology generators.

The paper's sampling experiments also use "synthetic topologies from BRITE
and real AS topologies".  BRITE's two flagship models are Waxman random
graphs and Barabási–Albert preferential attachment; both are provided here,
together with a helper that converts an edge-weighted underlay graph into
the all-pairs :class:`~repro.netsim.delayspace.DelaySpace` the overlay
operates on (overlay link delay = underlay shortest-path delay).
"""

from __future__ import annotations

from typing import Optional

import networkx as nx
import numpy as np

from repro.netsim.delayspace import DelaySpace
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import ValidationError


def waxman_underlay(
    n: int,
    *,
    alpha: float = 0.4,
    beta: float = 0.1,
    domain_size: float = 100.0,
    min_delay_ms: float = 1.0,
    seed: SeedLike = None,
) -> nx.Graph:
    """Generate a Waxman random-graph underlay (BRITE's flat router model).

    Nodes are placed uniformly in a ``domain_size`` x ``domain_size`` square;
    an edge between ``u`` and ``v`` at Euclidean distance ``d`` exists with
    probability ``alpha * exp(-d / (beta * L))`` where ``L`` is the maximum
    possible distance.  Edge weights (``delay_ms``) are proportional to
    distance, with a floor of ``min_delay_ms``.  The graph is patched to be
    connected by adding minimum-distance edges between components.
    """
    if n < 2:
        raise ValidationError(f"n must be >= 2, got {n}")
    rng = as_generator(seed)
    positions = rng.uniform(0.0, domain_size, size=(n, 2))
    graph = nx.Graph()
    for i in range(n):
        graph.add_node(i, pos=(float(positions[i, 0]), float(positions[i, 1])))
    max_dist = domain_size * np.sqrt(2.0)
    for i in range(n):
        for j in range(i + 1, n):
            dist = float(np.linalg.norm(positions[i] - positions[j]))
            prob = alpha * np.exp(-dist / (beta * max_dist))
            if rng.random() < prob:
                graph.add_edge(i, j, delay_ms=max(min_delay_ms, dist))
    _connect_components(graph, positions, min_delay_ms)
    return graph


def barabasi_albert_underlay(
    n: int,
    m: int = 2,
    *,
    mean_edge_delay_ms: float = 10.0,
    seed: SeedLike = None,
) -> nx.Graph:
    """Generate a Barabási–Albert preferential-attachment underlay.

    Edge delays are drawn from an exponential distribution with mean
    ``mean_edge_delay_ms``, reflecting the mix of short metro links and
    longer transit links in AS-level topologies.
    """
    if n < 2:
        raise ValidationError(f"n must be >= 2, got {n}")
    if not 1 <= m < n:
        raise ValidationError(f"m must satisfy 1 <= m < n, got m={m}, n={n}")
    rng = as_generator(seed)
    graph = nx.barabasi_albert_graph(n, m, seed=int(rng.integers(0, 2**31 - 1)))
    for u, v in graph.edges:
        graph.edges[u, v]["delay_ms"] = float(
            max(0.5, rng.exponential(mean_edge_delay_ms))
        )
    return graph


def _connect_components(
    graph: nx.Graph, positions: np.ndarray, min_delay_ms: float
) -> None:
    """Stitch disconnected components together with nearest-pair edges."""
    components = [list(c) for c in nx.connected_components(graph)]
    while len(components) > 1:
        base = components[0]
        other = components[1]
        best = None
        for u in base:
            for v in other:
                dist = float(np.linalg.norm(positions[u] - positions[v]))
                if best is None or dist < best[2]:
                    best = (u, v, dist)
        u, v, dist = best
        graph.add_edge(u, v, delay_ms=max(min_delay_ms, dist))
        components = [list(c) for c in nx.connected_components(graph)]


def delay_matrix_from_underlay(
    graph: nx.Graph,
    *,
    weight: str = "delay_ms",
    overlay_nodes: Optional[list] = None,
    jitter_std: float = 0.0,
) -> DelaySpace:
    """Build a :class:`DelaySpace` from an underlay graph.

    The delay between two overlay endpoints is the weight of the shortest
    underlay path between them — i.e. the delay of the IP path that an
    overlay link would ride over.

    Parameters
    ----------
    graph:
        Underlay graph whose edges carry a ``weight`` attribute in ms.
    weight:
        Name of the edge attribute holding the delay.
    overlay_nodes:
        Subset of underlay nodes that host overlay nodes; defaults to all.
    jitter_std:
        Measurement jitter passed through to the resulting delay space.
    """
    if overlay_nodes is None:
        overlay_nodes = sorted(graph.nodes)
    index = {node: i for i, node in enumerate(overlay_nodes)}
    n = len(overlay_nodes)
    matrix = np.zeros((n, n), dtype=float)
    lengths = dict(nx.all_pairs_dijkstra_path_length(graph, weight=weight))
    for src in overlay_nodes:
        row = lengths.get(src, {})
        for dst in overlay_nodes:
            if src == dst:
                continue
            if dst not in row:
                raise ValidationError(
                    "underlay graph is disconnected between overlay nodes "
                    f"{src} and {dst}"
                )
            matrix[index[src], index[dst]] = row[dst]
    labels = [str(node) for node in overlay_nodes]
    return DelaySpace(matrix, labels=labels, jitter_std=jitter_std)
