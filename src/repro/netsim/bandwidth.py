"""Per-link available-bandwidth model.

The paper's bandwidth experiments rely on pathChirp estimates of the
*available* bandwidth of each (potential) overlay link.  We model each
ordered pair of nodes as riding a bottleneck link whose capacity is drawn
from a small set of access-technology tiers and whose utilisation by cross
traffic fluctuates over time.  The available bandwidth of the pair is the
unused share of that bottleneck.

This reproduces the properties the EGOIST evaluation depends on:

* heterogeneity — some nodes sit behind fat pipes, some behind thin ones;
* temporal variation — cross traffic makes availability drift between
  wiring epochs, forcing re-wiring;
* rough symmetry within a node's access tier but asymmetry across pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.util.rng import SeedLike, as_generator
from repro.util.validation import ValidationError, check_probability


#: Access-capacity tiers in Mbps with their sampling probabilities, loosely
#: modelled on the mix of GREN (fast university) and commodity PlanetLab
#: sites: most sites have ~100 Mbps access, some are gigabit, a few are
#: throttled to tens of Mbps.
DEFAULT_CAPACITY_TIERS: Tuple[Tuple[float, float], ...] = (
    (1000.0, 0.15),
    (100.0, 0.60),
    (45.0, 0.15),
    (10.0, 0.10),
)


@dataclass(frozen=True)
class LinkBandwidthSample:
    """One observation of a directed overlay link's available bandwidth."""

    src: int
    dst: int
    available_mbps: float
    capacity_mbps: float


class BandwidthModel:
    """Ground-truth available bandwidth for every ordered node pair.

    Parameters
    ----------
    n:
        Number of overlay nodes.
    capacity_tiers:
        Sequence of ``(capacity_mbps, probability)`` pairs describing node
        access capacities.
    utilization_mean, utilization_std:
        Mean and standard deviation of the background (cross-traffic)
        utilisation of each node's access link, as a fraction of capacity.
    drift_std:
        Standard deviation of the per-step multiplicative drift applied by
        :meth:`advance`; models cross-traffic variation between epochs.
    seed:
        Seed or generator.
    """

    def __init__(
        self,
        n: int,
        *,
        capacity_tiers: Sequence[Tuple[float, float]] = DEFAULT_CAPACITY_TIERS,
        utilization_mean: float = 0.35,
        utilization_std: float = 0.2,
        drift_std: float = 0.05,
        seed: SeedLike = None,
    ):
        if n < 2:
            raise ValidationError(f"n must be >= 2, got {n}")
        probs = [p for _, p in capacity_tiers]
        if abs(sum(probs) - 1.0) > 1e-6:
            raise ValidationError("capacity tier probabilities must sum to 1")
        check_probability(utilization_mean, "utilization_mean")
        self.n = int(n)
        self.drift_std = float(drift_std)
        self._rng = as_generator(seed)
        capacities = [c for c, _ in capacity_tiers]
        tier_idx = self._rng.choice(len(capacities), size=n, p=probs)
        #: uplink capacity of each node in Mbps
        self.uplink_capacity = np.array([capacities[i] for i in tier_idx])
        #: downlink capacity (same tier, PlanetLab sites are symmetric)
        self.downlink_capacity = self.uplink_capacity.copy()
        # Background utilisation of each node's uplink and downlink.
        self._up_util = np.clip(
            self._rng.normal(utilization_mean, utilization_std, size=n), 0.0, 0.95
        )
        self._down_util = np.clip(
            self._rng.normal(utilization_mean, utilization_std, size=n), 0.0, 0.95
        )

    # ------------------------------------------------------------------ #
    # Ground truth
    # ------------------------------------------------------------------ #
    def available(self, src: int, dst: int) -> float:
        """Ground-truth available bandwidth (Mbps) of the directed pair.

        The bottleneck of the ``src -> dst`` IP path is modelled as the
        tighter of ``src``'s residual uplink and ``dst``'s residual
        downlink.
        """
        if src == dst:
            return float("inf")
        up = self.uplink_capacity[src] * (1.0 - self._up_util[src])
        down = self.downlink_capacity[dst] * (1.0 - self._down_util[dst])
        return float(min(up, down))

    def matrix(self) -> np.ndarray:
        """Full ``n x n`` available-bandwidth matrix (diagonal = +inf)."""
        up = self.uplink_capacity * (1.0 - self._up_util)
        down = self.downlink_capacity * (1.0 - self._down_util)
        mat = np.minimum(up[:, None], down[None, :])
        np.fill_diagonal(mat, np.inf)
        return mat

    # ------------------------------------------------------------------ #
    # Dynamics & measurement
    # ------------------------------------------------------------------ #
    def advance(self, steps: int = 1) -> None:
        """Let cross traffic drift for ``steps`` epochs.

        Utilisations follow a mean-reverting random walk clipped to
        ``[0, 0.95]`` so availability never collapses entirely.
        """
        for _ in range(int(steps)):
            for util in (self._up_util, self._down_util):
                noise = self._rng.normal(0.0, self.drift_std, size=self.n)
                reversion = 0.1 * (0.35 - util)
                util += reversion + noise
                np.clip(util, 0.0, 0.95, out=util)

    def sample(
        self, src: int, dst: int, *, relative_error: float = 0.1, rng: SeedLike = None
    ) -> LinkBandwidthSample:
        """Simulate one pathChirp-like probe of the directed pair.

        The estimate is the ground truth perturbed by zero-mean Gaussian
        noise with the given relative error (pathChirp is accurate to
        within roughly 10% in practice).
        """
        rng = as_generator(rng if rng is not None else self._rng)
        truth = self.available(src, dst)
        estimate = max(0.1, truth * (1.0 + float(rng.normal(0.0, relative_error))))
        capacity = float(
            min(self.uplink_capacity[src], self.downlink_capacity[dst])
        )
        return LinkBandwidthSample(
            src=src, dst=dst, available_mbps=estimate, capacity_mbps=capacity
        )

    def probe_cost_fraction(self) -> float:
        """Fraction of a link's available bandwidth consumed by probing.

        The paper reports that accurate probing consumed less than 2% of
        the available bandwidth between two nodes; we expose the same
        constant for the overhead accounting in
        :mod:`repro.core.overhead`.
        """
        return 0.02
