"""Per-node CPU load processes.

For the node-load cost metric the paper assigns every outgoing link of a
node a cost equal to the node's measured CPU load (a 1-minute EWMA of
``loadavg``).  PlanetLab nodes are notoriously heavily and *unevenly*
loaded, which is exactly why the k-Closest heuristic fails on this metric
("it fails to predict anything beyond the immediate neighbor, especially in
light of the high variance in node load").

We reproduce that environment with a heavy-tailed base load per node plus a
mean-reverting Ornstein–Uhlenbeck fluctuation, smoothed by the same EWMA a
real deployment would use.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.util.rng import SeedLike, as_generator
from repro.util.stats import Ewma
from repro.util.validation import ValidationError


class NodeLoadModel:
    """Ground-truth and measured CPU load for ``n`` nodes.

    Parameters
    ----------
    n:
        Number of nodes.
    base_shape, base_scale:
        Parameters of the Pareto-like (lomax) distribution of per-node base
        load.  The default yields a median base load around 2 with a long
        tail reaching 20+, mimicking busy PlanetLab machines.
    reversion, volatility:
        Ornstein–Uhlenbeck mean-reversion rate and volatility of the
        fluctuation component (per epoch).
    ewma_alpha:
        Smoothing factor of the per-node EWMA used for *measured* load.
    seed:
        Seed or generator.
    """

    def __init__(
        self,
        n: int,
        *,
        base_shape: float = 1.5,
        base_scale: float = 3.0,
        reversion: float = 0.2,
        volatility: float = 0.5,
        ewma_alpha: float = 0.3,
        seed: SeedLike = None,
    ):
        if n < 1:
            raise ValidationError(f"n must be >= 1, got {n}")
        self.n = int(n)
        self.reversion = float(reversion)
        self.volatility = float(volatility)
        self._rng = as_generator(seed)
        # Heavy-tailed base load (lomax = shifted Pareto), floor of 0.1.
        self.base_load = 0.1 + self._rng.pareto(base_shape, size=n) * base_scale / base_shape
        self._fluctuation = np.zeros(n)
        self._ewmas = [Ewma(alpha=ewma_alpha) for _ in range(n)]
        # Seed the EWMAs with one observation so measured_load is defined.
        for i in range(n):
            self._ewmas[i].update(self.true_load(i))

    def true_load(self, node: int) -> float:
        """Instantaneous ground-truth load of ``node`` (non-negative)."""
        return float(max(0.0, self.base_load[node] + self._fluctuation[node]))

    def true_loads(self) -> np.ndarray:
        """Vector of instantaneous ground-truth loads."""
        return np.maximum(0.0, self.base_load + self._fluctuation)

    def measured_load(self, node: int) -> float:
        """EWMA-smoothed load, i.e. what the node would announce."""
        return self._ewmas[node].value

    def measured_loads(self) -> np.ndarray:
        """Vector of EWMA-smoothed loads for all nodes."""
        return np.array([e.value for e in self._ewmas])

    def advance(self, steps: int = 1) -> None:
        """Advance the load processes by ``steps`` epochs.

        Each step applies one OU update to the fluctuation component and
        folds the resulting instantaneous load into each node's EWMA.
        """
        for _ in range(int(steps)):
            noise = self._rng.normal(0.0, self.volatility, size=self.n)
            self._fluctuation += -self.reversion * self._fluctuation + noise
            for i in range(self.n):
                self._ewmas[i].update(self.true_load(i))

    def spike(self, node: int, magnitude: float) -> None:
        """Inject a load spike on ``node`` (used in failure-injection tests)."""
        if magnitude < 0:
            raise ValidationError("magnitude must be non-negative")
        self._fluctuation[node] += magnitude

    def announcement_vector(self) -> np.ndarray:
        """Loads as announced via the link-state protocol (measured loads)."""
        return self.measured_loads()
