"""Network substrate simulation.

The original EGOIST evaluation ran on PlanetLab; this subpackage replaces
the testbed with a simulator that provides the same observable quantities:

* pairwise one-way delays between overlay nodes (:mod:`repro.netsim.delayspace`,
  :mod:`repro.netsim.planetlab`, :mod:`repro.netsim.topology`),
* per-link available bandwidth (:mod:`repro.netsim.bandwidth`),
* per-node CPU load (:mod:`repro.netsim.load`),
* active measurement via ping and pathChirp-like probing
  (:mod:`repro.netsim.probing`),
* passive delay estimation via a Vivaldi/pyxida-style virtual coordinate
  system (:mod:`repro.netsim.coordinates`), and
* an autonomous-system / multihoming model used by the multipath transfer
  application (:mod:`repro.netsim.autonomous_systems`).
"""

from repro.netsim.delayspace import DelaySpace
from repro.netsim.planetlab import (
    PlanetLabNode,
    Region,
    synthetic_planetlab,
    synthetic_planetlab_trace,
)
from repro.netsim.topology import (
    barabasi_albert_underlay,
    delay_matrix_from_underlay,
    waxman_underlay,
)
from repro.netsim.bandwidth import BandwidthModel
from repro.netsim.load import NodeLoadModel
from repro.netsim.coordinates import VivaldiCoordinateSystem
from repro.netsim.probing import ChirpProber, PingProber
from repro.netsim.autonomous_systems import ASTopology, PeeringLink

__all__ = [
    "DelaySpace",
    "PlanetLabNode",
    "Region",
    "synthetic_planetlab",
    "synthetic_planetlab_trace",
    "barabasi_albert_underlay",
    "delay_matrix_from_underlay",
    "waxman_underlay",
    "BandwidthModel",
    "NodeLoadModel",
    "VivaldiCoordinateSystem",
    "ChirpProber",
    "PingProber",
    "ASTopology",
    "PeeringLink",
]
