"""Autonomous-system (AS) and multihoming model.

Section 6.1 of the paper shows how a source node in a multihomed AS can
use its k first-hop EGOIST neighbours to open parallel sessions that each
ride a *different* AS peering point, escaping per-session rate limits
applied at those peering points (Fig. 9).  Reproducing Fig. 10 therefore
needs a model of:

* which AS each overlay node lives in,
* how many upstream peering links each AS has (its multihoming degree),
* the per-session rate cap enforced at each peering link, and
* which peering link a given overlay path leaves the source AS through.

The model here is deliberately simple: peering links are the only
bottlenecks it introduces (end-to-end available bandwidth beyond the
peering point comes from the :class:`~repro.netsim.bandwidth.BandwidthModel`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.util.rng import SeedLike, as_generator
from repro.util.validation import ValidationError, check_positive


@dataclass(frozen=True)
class PeeringLink:
    """One upstream peering link of an AS.

    Attributes
    ----------
    as_id:
        The AS this link belongs to.
    link_id:
        Index of the link within the AS (0-based).
    session_rate_cap_mbps:
        Maximum rate a single (source, destination) session may push
        through this peering point — the traffic-shaping limit that
        multipath redirection circumvents.
    """

    as_id: int
    link_id: int
    session_rate_cap_mbps: float


class ASTopology:
    """Assignment of overlay nodes to (possibly multihomed) ASes.

    Parameters
    ----------
    n:
        Number of overlay nodes.
    n_ases:
        Number of distinct ASes to spread nodes over.
    multihoming_choices:
        Candidate multihoming degrees and their probabilities, e.g. the
        default gives 40% single-homed, 35% dual-homed, 25% triple-homed
        ASes.
    session_cap_range_mbps:
        Per-peering-link session rate caps are drawn uniformly from this
        range (paper's example uses 1 and 2 Mbps caps).
    seed:
        Seed or generator.
    """

    def __init__(
        self,
        n: int,
        *,
        n_ases: Optional[int] = None,
        multihoming_choices: Sequence[Tuple[int, float]] = (
            (1, 0.25),
            (2, 0.35),
            (3, 0.25),
            (4, 0.15),
        ),
        session_cap_range_mbps: Tuple[float, float] = (1.0, 3.0),
        seed: SeedLike = None,
    ):
        if n < 1:
            raise ValidationError(f"n must be >= 1, got {n}")
        rng = as_generator(seed)
        self.n = int(n)
        if n_ases is None:
            n_ases = max(2, n // 3)
        if n_ases < 1 or n_ases > n:
            raise ValidationError(f"n_ases must be in [1, {n}], got {n_ases}")
        self.n_ases = int(n_ases)
        degrees = [d for d, _ in multihoming_choices]
        probs = [p for _, p in multihoming_choices]
        if abs(sum(probs) - 1.0) > 1e-6:
            raise ValidationError("multihoming probabilities must sum to 1")
        low, high = session_cap_range_mbps
        check_positive(low, "session_cap_range_mbps[0]")
        if high < low:
            raise ValidationError("session cap range must be (low, high) with high >= low")

        # Assign every node to an AS; make sure every AS gets at least one
        # node by assigning the first n_ases nodes round-robin.
        assignment = np.empty(n, dtype=int)
        assignment[: self.n_ases] = np.arange(self.n_ases)
        if n > self.n_ases:
            assignment[self.n_ases:] = rng.integers(0, self.n_ases, size=n - self.n_ases)
        rng.shuffle(assignment)
        self.node_as: np.ndarray = assignment

        # Peering links per AS.
        self.peering_links: Dict[int, List[PeeringLink]] = {}
        for as_id in range(self.n_ases):
            degree = int(rng.choice(degrees, p=probs))
            links = [
                PeeringLink(
                    as_id=as_id,
                    link_id=link_id,
                    session_rate_cap_mbps=float(rng.uniform(low, high)),
                )
                for link_id in range(degree)
            ]
            self.peering_links[as_id] = links

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def as_of(self, node: int) -> int:
        """AS identifier of ``node``."""
        return int(self.node_as[node])

    def nodes_in_as(self, as_id: int) -> List[int]:
        """All overlay nodes hosted in AS ``as_id``."""
        return [i for i in range(self.n) if self.node_as[i] == as_id]

    def multihoming_degree(self, as_id: int) -> int:
        """Number of upstream peering links of AS ``as_id``."""
        return len(self.peering_links[as_id])

    def egress_link(self, src: int, dst: int) -> PeeringLink:
        """Peering link that traffic from ``src`` towards ``dst`` leaves on.

        Traffic between nodes of the same AS does not cross a peering point;
        a synthetic uncapped link is returned in that case.  Otherwise the
        egress link is chosen deterministically by hashing the destination
        AS over the source AS's peering links — modelling hot-potato /
        policy routing that pins each remote AS behind one exit.
        """
        src_as = self.as_of(src)
        dst_as = self.as_of(dst)
        if src_as == dst_as:
            return PeeringLink(as_id=src_as, link_id=-1, session_rate_cap_mbps=float("inf"))
        links = self.peering_links[src_as]
        return links[dst_as % len(links)]

    def session_rate_limit(self, src: int, dst: int) -> float:
        """Per-session rate cap (Mbps) on the direct IP path ``src -> dst``."""
        return self.egress_link(src, dst).session_rate_cap_mbps

    def max_egress_rate(self, src: int) -> float:
        """Aggregate rate achievable out of ``src`` using every peering link once.

        This is the theoretical multiplicative benefit ceiling of multipath
        redirection noted in the paper: one session per peering link of the
        source AS.
        """
        links = self.peering_links[self.as_of(src)]
        return float(sum(link.session_rate_cap_mbps for link in links))

    def describe(self) -> dict:
        """Summary statistics of the AS topology (for reports and tests)."""
        degrees = [self.multihoming_degree(a) for a in range(self.n_ases)]
        return {
            "nodes": self.n,
            "ases": self.n_ases,
            "mean_multihoming_degree": float(np.mean(degrees)),
            "max_multihoming_degree": int(np.max(degrees)),
            "single_homed_fraction": float(np.mean([d == 1 for d in degrees])),
        }
