"""Trace file input/output.

The paper's simulations are driven by traces: an all-pairs ping data set
covering the PlanetLab sites (used by the sampling experiments) and the
PlanetLab availability traces behind the churn experiments.  This module
defines simple, documented on-disk formats for both so that experiments
can be re-run against externally supplied data instead of the synthetic
generators:

* **Delay traces** — CSV with a header row, one row per ordered pair:
  ``src,dst,delay_ms``.  Node identifiers may be arbitrary strings; they
  are mapped to dense indices in first-appearance order.
* **Churn traces** — CSV with a header row, one row per ON session:
  ``node,start_s,end_s``.

Both formats round-trip through :class:`~repro.netsim.delayspace.DelaySpace`
and :class:`~repro.churn.models.ChurnSchedule`.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Tuple, Union

import numpy as np

from repro.churn.models import ChurnSchedule, OnOffSession
from repro.netsim.delayspace import DelaySpace
from repro.util.validation import ValidationError

PathLike = Union[str, Path]


# ---------------------------------------------------------------------- #
# Delay traces
# ---------------------------------------------------------------------- #
def write_delay_trace(space: DelaySpace, path: PathLike) -> None:
    """Write a delay space as a ``src,dst,delay_ms`` CSV trace."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["src", "dst", "delay_ms"])
        for i in range(space.size):
            for j in range(space.size):
                if i == j:
                    continue
                writer.writerow([space.labels[i], space.labels[j], f"{space.delay(i, j):.6f}"])


def read_delay_trace(
    path: PathLike,
    *,
    fill_missing: float | None = None,
    jitter_std: float = 0.0,
) -> DelaySpace:
    """Read a ``src,dst,delay_ms`` CSV trace into a :class:`DelaySpace`.

    Parameters
    ----------
    path:
        CSV file with a header row.
    fill_missing:
        Value used for ordered pairs absent from the trace.  ``None``
        (default) raises if any off-diagonal pair is missing, mirroring the
        all-pairs nature of the paper's data set.
    jitter_std:
        Measurement jitter to attach to the resulting delay space.
    """
    path = Path(path)
    index: Dict[str, int] = {}
    entries: List[Tuple[str, str, float]] = []
    with path.open() as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or [h.strip().lower() for h in header[:3]] != ["src", "dst", "delay_ms"]:
            raise ValidationError(
                f"{path} does not look like a delay trace (expected header src,dst,delay_ms)"
            )
        for row_number, row in enumerate(reader, start=2):
            if not row or all(not cell.strip() for cell in row):
                continue
            if len(row) < 3:
                raise ValidationError(f"{path}:{row_number}: expected 3 columns, got {len(row)}")
            src, dst, delay = row[0].strip(), row[1].strip(), float(row[2])
            if delay < 0:
                raise ValidationError(f"{path}:{row_number}: negative delay {delay}")
            for label in (src, dst):
                if label not in index:
                    index[label] = len(index)
            entries.append((src, dst, delay))
    n = len(index)
    if n < 2:
        raise ValidationError(f"{path} contains fewer than two distinct nodes")
    matrix = np.full((n, n), np.nan)
    np.fill_diagonal(matrix, 0.0)
    for src, dst, delay in entries:
        matrix[index[src], index[dst]] = delay
    missing = np.isnan(matrix)
    if missing.any():
        if fill_missing is None:
            pairs = int(missing.sum())
            raise ValidationError(
                f"{path} is missing {pairs} ordered pairs; pass fill_missing to accept"
            )
        matrix[missing] = float(fill_missing)
    labels = [label for label, _idx in sorted(index.items(), key=lambda kv: kv[1])]
    return DelaySpace(matrix, labels=labels, jitter_std=jitter_std)


# ---------------------------------------------------------------------- #
# Churn traces
# ---------------------------------------------------------------------- #
def write_churn_trace(schedule: ChurnSchedule, path: PathLike) -> None:
    """Write a churn schedule as a ``node,start_s,end_s`` CSV trace."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["node", "start_s", "end_s"])
        for session in schedule.sessions:
            writer.writerow([session.node, f"{session.start:.3f}", f"{session.end:.3f}"])


def read_churn_trace(
    path: PathLike,
    *,
    n: int | None = None,
    horizon: float | None = None,
    timescale: float = 1.0,
) -> ChurnSchedule:
    """Read a ``node,start_s,end_s`` CSV trace into a :class:`ChurnSchedule`.

    Parameters
    ----------
    path:
        CSV file with a header row.
    n:
        Number of nodes; defaults to ``max(node) + 1`` seen in the trace.
    horizon:
        Schedule horizon; defaults to the latest session end.
    timescale:
        Factor applied to all times — the paper's "adjustments to the
        timescale to control the intensity of churn" (values < 1 compress
        time and therefore increase the churn rate).
    """
    if timescale <= 0:
        raise ValidationError("timescale must be positive")
    path = Path(path)
    sessions: List[OnOffSession] = []
    max_node = -1
    max_end = 0.0
    with path.open() as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or [h.strip().lower() for h in header[:3]] != ["node", "start_s", "end_s"]:
            raise ValidationError(
                f"{path} does not look like a churn trace (expected header node,start_s,end_s)"
            )
        for row_number, row in enumerate(reader, start=2):
            if not row or all(not cell.strip() for cell in row):
                continue
            if len(row) < 3:
                raise ValidationError(f"{path}:{row_number}: expected 3 columns, got {len(row)}")
            node = int(row[0])
            start = float(row[1]) * timescale
            end = float(row[2]) * timescale
            sessions.append(OnOffSession(node=node, start=start, end=end))
            max_node = max(max_node, node)
            max_end = max(max_end, end)
    if not sessions:
        raise ValidationError(f"{path} contains no sessions")
    n = n if n is not None else max_node + 1
    horizon = horizon if horizon is not None else max_end
    return ChurnSchedule(n, horizon, sessions)
