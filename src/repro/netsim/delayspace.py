"""Pairwise delay spaces.

A :class:`DelaySpace` holds the ground-truth one-way delay (in milliseconds)
between every ordered pair of underlay endpoints.  It is the quantity that
the paper's ping measurements estimate (RTT/2) and that the virtual
coordinate system approximates.  Delay spaces can be generated synthetically
(:mod:`repro.netsim.planetlab`, :mod:`repro.netsim.topology`), loaded from a
trace file, or built directly from a matrix.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.util.rng import SeedLike, as_generator
from repro.util.validation import ValidationError, check_matrix_square


class DelaySpace:
    """Ground-truth one-way delays between ``n`` endpoints.

    Parameters
    ----------
    matrix:
        ``n x n`` array of one-way delays in milliseconds.  The diagonal is
        forced to zero.  Entries may be asymmetric (``d_ij != d_ji``), as in
        the paper's directed-edge model.
    labels:
        Optional human-readable endpoint names (e.g. PlanetLab site names).
    jitter_std:
        Standard deviation (ms) of the per-sample measurement jitter applied
        by :meth:`sample_delay`; models transient queueing variation.
    """

    def __init__(
        self,
        matrix: np.ndarray,
        labels: Optional[Sequence[str]] = None,
        jitter_std: float = 0.0,
    ):
        matrix = check_matrix_square(matrix, "matrix")
        if np.any(matrix < 0):
            raise ValidationError("delay matrix entries must be non-negative")
        matrix = matrix.copy()
        np.fill_diagonal(matrix, 0.0)
        self._matrix = matrix
        self.jitter_std = float(jitter_std)
        if self.jitter_std < 0:
            raise ValidationError("jitter_std must be non-negative")
        n = matrix.shape[0]
        if labels is None:
            labels = [f"node-{i}" for i in range(n)]
        labels = list(labels)
        if len(labels) != n:
            raise ValidationError(
                f"expected {n} labels, got {len(labels)}"
            )
        self.labels: List[str] = labels

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of endpoints."""
        return self._matrix.shape[0]

    def __len__(self) -> int:
        return self.size

    @property
    def matrix(self) -> np.ndarray:
        """A read-only view of the full delay matrix (ms)."""
        view = self._matrix.view()
        view.setflags(write=False)
        return view

    def delay(self, src: int, dst: int) -> float:
        """Ground-truth one-way delay from ``src`` to ``dst`` in ms."""
        return float(self._matrix[src, dst])

    def rtt(self, src: int, dst: int) -> float:
        """Ground-truth round-trip time between ``src`` and ``dst`` in ms."""
        return float(self._matrix[src, dst] + self._matrix[dst, src])

    def is_symmetric(self, tolerance: float = 1e-9) -> bool:
        """True if the delay matrix is symmetric within ``tolerance``."""
        return bool(np.allclose(self._matrix, self._matrix.T, atol=tolerance))

    def mean_delay(self) -> float:
        """Mean off-diagonal delay (ms)."""
        n = self.size
        if n < 2:
            return 0.0
        mask = ~np.eye(n, dtype=bool)
        return float(self._matrix[mask].mean())

    # ------------------------------------------------------------------ #
    # Sampling (what a measurement would see)
    # ------------------------------------------------------------------ #
    def sample_delay(
        self, src: int, dst: int, rng: SeedLike = None
    ) -> float:
        """Return a single noisy observation of the ``src -> dst`` delay.

        The observation is the ground truth plus zero-mean Gaussian jitter
        with standard deviation ``jitter_std``, truncated at zero.
        """
        base = self.delay(src, dst)
        if self.jitter_std == 0.0:
            return base
        rng = as_generator(rng)
        return max(0.0, base + float(rng.normal(0.0, self.jitter_std)))

    def sample_rtt(self, src: int, dst: int, rng: SeedLike = None) -> float:
        """Return a single noisy RTT observation."""
        rng = as_generator(rng)
        fwd = self.sample_delay(src, dst, rng)
        back = self.sample_delay(dst, src, rng)
        return fwd + back

    # ------------------------------------------------------------------ #
    # Derivation / persistence
    # ------------------------------------------------------------------ #
    def restrict(self, indices: Sequence[int]) -> "DelaySpace":
        """Return the sub-delay-space induced by ``indices`` (in order)."""
        idx = list(indices)
        sub = self._matrix[np.ix_(idx, idx)]
        labels = [self.labels[i] for i in idx]
        return DelaySpace(sub, labels=labels, jitter_std=self.jitter_std)

    def perturbed(
        self, relative_std: float, rng: SeedLike = None
    ) -> "DelaySpace":
        """Return a copy whose entries are multiplied by log-normal noise.

        Used to emulate slow drift of Internet path delays between wiring
        epochs (the dynamics that cause BR nodes to keep re-wiring in the
        paper's Fig. 3).
        """
        if relative_std < 0:
            raise ValidationError("relative_std must be non-negative")
        rng = as_generator(rng)
        if relative_std == 0.0:
            return DelaySpace(
                self._matrix.copy(), labels=self.labels, jitter_std=self.jitter_std
            )
        sigma = np.sqrt(np.log1p(relative_std**2))
        factors = rng.lognormal(mean=-(sigma**2) / 2.0, sigma=sigma, size=self._matrix.shape)
        new = self._matrix * factors
        np.fill_diagonal(new, 0.0)
        return DelaySpace(new, labels=self.labels, jitter_std=self.jitter_std)

    def to_dict(self) -> dict:
        """Serialise to a plain dictionary (JSON-compatible)."""
        return {
            "labels": self.labels,
            "jitter_std": self.jitter_std,
            "matrix": self._matrix.tolist(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DelaySpace":
        """Inverse of :meth:`to_dict`."""
        return cls(
            np.asarray(data["matrix"], dtype=float),
            labels=data.get("labels"),
            jitter_std=data.get("jitter_std", 0.0),
        )

    def save(self, path: Union[str, Path]) -> None:
        """Write the delay space to ``path`` as JSON."""
        Path(path).write_text(json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "DelaySpace":
        """Load a delay space previously written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text()))

    @classmethod
    def from_coordinates(
        cls,
        points: np.ndarray,
        *,
        propagation_ms_per_unit: float = 1.0,
        access_delay_ms: Union[float, np.ndarray] = 0.0,
        asymmetry_std: float = 0.0,
        jitter_std: float = 0.0,
        labels: Optional[Sequence[str]] = None,
        rng: SeedLike = None,
    ) -> "DelaySpace":
        """Build a delay space from endpoint coordinates.

        Each pairwise delay is the Euclidean distance scaled by
        ``propagation_ms_per_unit`` plus the access delays of both
        endpoints, optionally perturbed by multiplicative log-normal noise
        with relative standard deviation ``asymmetry_std`` (applied
        independently per direction, yielding an asymmetric matrix).
        """
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2:
            raise ValidationError("points must be a 2-D array (n, dims)")
        n = pts.shape[0]
        diff = pts[:, None, :] - pts[None, :, :]
        dist = np.sqrt((diff**2).sum(axis=-1)) * float(propagation_ms_per_unit)
        access = np.asarray(access_delay_ms, dtype=float)
        if access.ndim == 0:
            access = np.full(n, float(access))
        if access.shape != (n,):
            raise ValidationError("access_delay_ms must be scalar or length-n")
        dist = dist + access[:, None] + access[None, :]
        if asymmetry_std > 0:
            rng = as_generator(rng)
            sigma = np.sqrt(np.log1p(asymmetry_std**2))
            noise = rng.lognormal(-(sigma**2) / 2.0, sigma, size=(n, n))
            dist = dist * noise
        np.fill_diagonal(dist, 0.0)
        return cls(dist, labels=labels, jitter_std=jitter_std)
