"""Vivaldi-style virtual network coordinate system.

EGOIST's passive delay-estimation mode queries the pyxida coordinate
service, which maintains Vivaldi network coordinates: every node holds a
low-dimensional Euclidean coordinate (plus a non-Euclidean "height"
modelling access-link delay) that is iteratively adjusted, spring-style,
whenever the node observes an RTT sample to a peer.  The predicted delay
between two nodes is then the distance between their coordinates.

This module implements the Vivaldi update rule and a convenience driver
that trains a coordinate system against a ground-truth
:class:`~repro.netsim.delayspace.DelaySpace`, reproducing the paper's
trade-off: coordinate-based estimates are cheaper (one query returns the
distance to everyone) but noisier than direct ping measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.netsim.delayspace import DelaySpace
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import ValidationError, check_positive


@dataclass
class VivaldiCoordinate:
    """A Euclidean coordinate with height and local error estimate."""

    position: np.ndarray
    height: float = 0.0
    error: float = 1.0

    def distance_to(self, other: "VivaldiCoordinate") -> float:
        """Predicted one-way delay (ms) to ``other``."""
        diff = self.position - other.position
        # sqrt of an explicit self-product, matching the broadcast form
        # in VivaldiCoordinateSystem.estimate_matrix entry for entry.
        euclid = float(np.sqrt((diff * diff).sum()))
        return euclid + self.height + other.height

    def copy(self) -> "VivaldiCoordinate":
        """Deep copy (positions are mutated in place during updates)."""
        return VivaldiCoordinate(
            position=self.position.copy(), height=self.height, error=self.error
        )


class VivaldiCoordinateSystem:
    """A set of Vivaldi coordinates, one per overlay node.

    Parameters
    ----------
    n:
        Number of nodes.
    dimensions:
        Dimensionality of the Euclidean part (pyxida uses 4-D + height).
    ce, cc:
        Vivaldi tuning constants: ``ce`` scales the adaptive timestep from
        the error estimates, ``cc`` scales how fast local error adapts.
    seed:
        Seed or generator (controls initial random placement and the
        direction chosen when two coordinates coincide).
    """

    def __init__(
        self,
        n: int,
        *,
        dimensions: int = 4,
        ce: float = 0.25,
        cc: float = 0.25,
        seed: SeedLike = None,
    ):
        if n < 2:
            raise ValidationError(f"n must be >= 2, got {n}")
        if dimensions < 1:
            raise ValidationError("dimensions must be >= 1")
        self.n = int(n)
        self.dimensions = int(dimensions)
        self.ce = check_positive(ce, "ce")
        self.cc = check_positive(cc, "cc")
        self._rng = as_generator(seed)
        self.coordinates: List[VivaldiCoordinate] = [
            VivaldiCoordinate(
                position=self._rng.normal(0.0, 1.0, size=dimensions),
                height=float(self._rng.uniform(0.1, 1.0)),
                error=1.0,
            )
            for _ in range(n)
        ]

    # ------------------------------------------------------------------ #
    # Vivaldi update rule
    # ------------------------------------------------------------------ #
    def observe(self, i: int, j: int, rtt_ms: float) -> None:
        """Update node ``i``'s coordinate from an RTT sample to ``j``.

        ``rtt_ms`` is the measured round-trip time; Vivaldi embeds one-way
        delays, so the sample is halved internally.
        """
        if rtt_ms < 0:
            raise ValidationError("rtt_ms must be non-negative")
        sample = rtt_ms / 2.0
        local = self.coordinates[i]
        remote = self.coordinates[j]
        predicted = local.distance_to(remote)
        # Relative error of this sample.
        if sample > 0:
            rel_error = abs(predicted - sample) / sample
        else:
            rel_error = abs(predicted - sample)
        # Weight of the sample based on both nodes' confidence.
        total_error = local.error + remote.error
        weight = local.error / total_error if total_error > 0 else 0.5
        # Update local error estimate (EWMA weighted by sample weight).
        local.error = rel_error * self.cc * weight + local.error * (
            1.0 - self.cc * weight
        )
        local.error = float(min(max(local.error, 0.01), 5.0))
        # Adaptive timestep and force application.
        delta = self.ce * weight
        direction = local.position - remote.position
        norm = float(np.linalg.norm(direction))
        if norm < 1e-9:
            direction = self._rng.normal(0.0, 1.0, size=self.dimensions)
            norm = float(np.linalg.norm(direction))
        unit = direction / norm
        force = sample - predicted
        # Positive force (sample larger than prediction) pushes nodes apart.
        local.position = local.position + delta * force * unit
        # Height absorbs a fraction of the residual error, floored at zero.
        local.height = float(max(0.0, local.height + delta * force * 0.1))

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def estimate(self, i: int, j: int) -> float:
        """Predicted one-way delay (ms) from node ``i`` to node ``j``."""
        if i == j:
            return 0.0
        return self.coordinates[i].distance_to(self.coordinates[j])

    def estimate_matrix(self) -> np.ndarray:
        """Full ``n x n`` matrix of predicted one-way delays (ms).

        One broadcast over the stacked positions instead of ``n^2``
        pairwise queries; entries match :meth:`estimate` exactly (the
        same products are summed in the same order).
        """
        positions = np.stack([c.position for c in self.coordinates])
        heights = np.array([c.height for c in self.coordinates])
        diff = positions[:, None, :] - positions[None, :, :]
        euclid = np.sqrt((diff * diff).sum(axis=2))
        mat = euclid + heights[:, None] + heights[None, :]
        np.fill_diagonal(mat, 0.0)
        return mat

    def median_error(self, truth: DelaySpace) -> float:
        """Median relative estimation error against a ground-truth space."""
        errors = []
        for i in range(self.n):
            for j in range(self.n):
                if i == j:
                    continue
                actual = truth.delay(i, j)
                if actual <= 0:
                    continue
                errors.append(abs(self.estimate(i, j) - actual) / actual)
        if not errors:
            return 0.0
        return float(np.median(errors))

    # ------------------------------------------------------------------ #
    # Training driver
    # ------------------------------------------------------------------ #
    def train(
        self,
        truth: DelaySpace,
        *,
        rounds: int = 50,
        samples_per_round: int = 8,
        rng: SeedLike = None,
    ) -> float:
        """Train the embedding against a ground-truth delay space.

        Each round, every node observes RTT samples to
        ``samples_per_round`` random peers (as pyxida nodes gossip with a
        few neighbours per period).  Returns the final median relative
        error.
        """
        if truth.size != self.n:
            raise ValidationError(
                f"delay space has {truth.size} nodes, coordinate system has {self.n}"
            )
        rng = as_generator(rng if rng is not None else self._rng)
        for _ in range(int(rounds)):
            for i in range(self.n):
                peers = rng.choice(
                    [j for j in range(self.n) if j != i],
                    size=min(samples_per_round, self.n - 1),
                    replace=False,
                )
                for j in peers:
                    rtt = truth.sample_rtt(i, int(j), rng)
                    self.observe(i, int(j), rtt)
        return self.median_error(truth)
