"""Synthetic PlanetLab-like delay spaces.

The paper's baseline experiments use 50 PlanetLab nodes (30 in North
America, 11 in Europe, 7 in Asia, 1 in South America, 1 in Oceania); the
sampling experiments use a publicly available all-pairs ping trace covering
295 PlanetLab sites.  Neither artefact is available offline, so this module
generates delay spaces with the same structure: nodes clustered in
geographic regions, intra-region delays of a few milliseconds to a few tens
of milliseconds, inter-continental delays of 50-300 ms, moderate asymmetry
and per-node access delays — the features that make neighbour selection a
non-trivial optimisation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.netsim.delayspace import DelaySpace
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import ValidationError, check_positive


class Region(enum.Enum):
    """Coarse geographic regions used to place synthetic PlanetLab nodes."""

    NORTH_AMERICA = "north-america"
    EUROPE = "europe"
    ASIA = "asia"
    SOUTH_AMERICA = "south-america"
    OCEANIA = "oceania"


#: Region centres in a 2-D plane whose unit distance corresponds to ~1 ms of
#: propagation delay.  The absolute positions are arbitrary; only the
#: pairwise distances matter, and they are tuned to give realistic
#: inter-continental RTTs (e.g. ~80-100 ms one-way US <-> Europe/Asia).
_REGION_CENTERS: Dict[Region, Tuple[float, float]] = {
    Region.NORTH_AMERICA: (0.0, 0.0),
    Region.EUROPE: (85.0, 10.0),
    Region.ASIA: (95.0, -75.0),
    Region.SOUTH_AMERICA: (-20.0, -90.0),
    Region.OCEANIA: (30.0, -140.0),
}

#: Spread (standard deviation, in the same units) of node positions around
#: their region centre.  North America and Europe host dense deployments.
_REGION_SPREAD: Dict[Region, float] = {
    Region.NORTH_AMERICA: 14.0,
    Region.EUROPE: 8.0,
    Region.ASIA: 12.0,
    Region.SOUTH_AMERICA: 6.0,
    Region.OCEANIA: 5.0,
}

#: Node counts per region matching the paper's 50-node deployment.
PAPER_REGION_MIX: Dict[Region, int] = {
    Region.NORTH_AMERICA: 30,
    Region.EUROPE: 11,
    Region.ASIA: 7,
    Region.SOUTH_AMERICA: 1,
    Region.OCEANIA: 1,
}


@dataclass(frozen=True)
class PlanetLabNode:
    """Metadata for one synthetic PlanetLab node."""

    index: int
    name: str
    region: Region
    position: Tuple[float, float]
    access_delay_ms: float


def _scale_region_mix(mix: Dict[Region, int], n: int) -> Dict[Region, int]:
    """Scale a region mix to a total of ``n`` nodes, preserving proportions."""
    total = sum(mix.values())
    scaled = {r: max(0, int(round(n * c / total))) for r, c in mix.items()}
    # Fix rounding drift by adjusting the largest region.
    drift = n - sum(scaled.values())
    largest = max(scaled, key=lambda r: scaled[r])
    scaled[largest] += drift
    if scaled[largest] < 0:
        raise ValidationError(f"cannot scale region mix to n={n}")
    return scaled


def _place_nodes(
    n: int,
    region_mix: Dict[Region, int],
    rng: np.random.Generator,
) -> List[PlanetLabNode]:
    """Scatter ``n`` nodes around their region centres."""
    nodes: List[PlanetLabNode] = []
    index = 0
    for region, count in region_mix.items():
        cx, cy = _REGION_CENTERS[region]
        spread = _REGION_SPREAD[region]
        for local in range(count):
            pos = (
                float(cx + rng.normal(0.0, spread)),
                float(cy + rng.normal(0.0, spread)),
            )
            # Access (last-mile + stack) delay: a few ms, heavy-ish tail.
            access = float(rng.gamma(shape=2.0, scale=1.0))
            nodes.append(
                PlanetLabNode(
                    index=index,
                    name=f"{region.value}-{local:02d}",
                    region=region,
                    position=pos,
                    access_delay_ms=access,
                )
            )
            index += 1
    return nodes


def synthetic_planetlab(
    n: int = 50,
    *,
    region_mix: Optional[Dict[Region, int]] = None,
    asymmetry_std: float = 0.05,
    jitter_std: float = 0.5,
    seed: SeedLike = None,
) -> Tuple[DelaySpace, List[PlanetLabNode]]:
    """Generate a synthetic PlanetLab-like deployment of ``n`` nodes.

    Parameters
    ----------
    n:
        Number of overlay nodes (the paper uses 50).
    region_mix:
        Optional mapping from :class:`Region` to node count.  Defaults to
        the paper's 30/11/7/1/1 mix scaled to ``n``.
    asymmetry_std:
        Relative standard deviation of the directional (forward vs reverse)
        delay asymmetry.
    jitter_std:
        Per-measurement jitter (ms) applied when the delay space is sampled.
    seed:
        Seed or generator for reproducibility.

    Returns
    -------
    (DelaySpace, list[PlanetLabNode])
        The ground-truth delay space and per-node metadata.
    """
    if n < 2:
        raise ValidationError(f"n must be >= 2, got {n}")
    rng = as_generator(seed)
    if region_mix is None:
        region_mix = _scale_region_mix(PAPER_REGION_MIX, n)
    elif sum(region_mix.values()) != n:
        raise ValidationError(
            f"region_mix totals {sum(region_mix.values())}, expected n={n}"
        )
    nodes = _place_nodes(n, region_mix, rng)
    points = np.array([node.position for node in nodes], dtype=float)
    access = np.array([node.access_delay_ms for node in nodes], dtype=float)
    labels = [node.name for node in nodes]
    space = DelaySpace.from_coordinates(
        points,
        propagation_ms_per_unit=1.0,
        access_delay_ms=access,
        asymmetry_std=asymmetry_std,
        jitter_std=jitter_std,
        labels=labels,
        rng=rng,
    )
    return space, nodes


def synthetic_planetlab_trace(
    n: int = 295,
    *,
    asymmetry_std: float = 0.05,
    jitter_std: float = 0.0,
    seed: SeedLike = None,
) -> DelaySpace:
    """Generate a large PlanetLab-like all-pairs delay trace.

    This stands in for the 295-site all-pairs ping data set used by the
    paper's sampling experiments (Section 5).  The structure (regional
    clustering, heavy inter-continental delays) matches
    :func:`synthetic_planetlab`; only the size differs.
    """
    space, _nodes = synthetic_planetlab(
        n,
        asymmetry_std=asymmetry_std,
        jitter_std=jitter_std,
        seed=seed,
    )
    return space


def uniform_delay_space(
    n: int,
    low_ms: float = 5.0,
    high_ms: float = 200.0,
    *,
    symmetric: bool = True,
    seed: SeedLike = None,
) -> DelaySpace:
    """A structureless uniform-random delay space (useful for testing).

    Unlike :func:`synthetic_planetlab` the resulting metric has no regional
    clustering and may violate the triangle inequality; it exercises the
    algorithms on adversarially unstructured inputs.
    """
    if n < 2:
        raise ValidationError(f"n must be >= 2, got {n}")
    low_ms = check_positive(low_ms, "low_ms")
    if high_ms < low_ms:
        raise ValidationError("high_ms must be >= low_ms")
    rng = as_generator(seed)
    matrix = rng.uniform(low_ms, high_ms, size=(n, n))
    if symmetric:
        matrix = (matrix + matrix.T) / 2.0
    np.fill_diagonal(matrix, 0.0)
    return DelaySpace(matrix)
