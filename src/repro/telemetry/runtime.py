"""Process-wide telemetry state and the zero-cost-when-off guard.

All instrumentation in the repo routes through the module-level helpers
here (:func:`span`, :func:`event`, :func:`count`, :func:`observe`,
:func:`set_gauge`, :func:`kernel_call`).  When telemetry is disabled —
the default — every helper is one global read plus a ``None`` check and
returns a module-level singleton where a value is needed, so the
instrumented hot paths stay within noise of un-instrumented code
(``benchmarks/test_bench_telemetry_overhead.py`` gates this at <2% of
an epoch's wall-clock) and allocate nothing that survives the call.

Enabling is explicit and process-local::

    from repro import telemetry

    telemetry.enable(trace="out.jsonl")      # tracer + metrics registry
    ...
    summary = telemetry.disable()            # {"spans": N, "events": M}

Nothing telemetry records may enter a result-bearing artifact
(:class:`~repro.core.engine.EpochRecord`, a stored sweep cell): results
must stay byte-identical with telemetry on and off, which is asserted
by ``tests/telemetry/test_noop_guard.py``.
"""

from __future__ import annotations

import io
from typing import Dict, Optional, Sequence, Union

from repro.telemetry.registry import (
    DEFAULT_LATENCY_EDGES,
    NULL_SPAN,
    MetricsRegistry,
)
from repro.telemetry.trace import Span, Tracer

_metrics: Optional[MetricsRegistry] = None
_tracer: Optional[Tracer] = None
_trace_path: Optional[str] = None
_trace_file = None


def enable(
    *,
    trace: Union[None, str, list, io.TextIOBase] = None,
    metrics: bool = True,
) -> MetricsRegistry:
    """Turn telemetry on for this process.

    ``trace`` may be a path (opened for writing, closed by
    :func:`disable`), an open text file, or a list sink (tests).  With
    ``metrics`` true a fresh :class:`MetricsRegistry` replaces any
    previous one.  Returns the active registry (a throwaway one if
    ``metrics`` is false, so callers need not branch).
    """
    global _metrics, _tracer, _trace_path, _trace_file
    disable()
    if metrics:
        _metrics = MetricsRegistry()
    if trace is not None:
        if isinstance(trace, str):
            _trace_path = trace
            _trace_file = open(trace, "w", encoding="utf-8")
            _tracer = Tracer(_trace_file)
        else:
            _tracer = Tracer(trace)
    return _metrics if _metrics is not None else MetricsRegistry()


def disable() -> Dict[str, int]:
    """Turn telemetry off; returns the closing tracer's span/event counts."""
    global _metrics, _tracer, _trace_path, _trace_file
    summary = {"spans": 0, "events": 0}
    if _tracer is not None:
        summary = _tracer.close()
    if _trace_file is not None:
        _trace_file.close()
    _metrics = None
    _tracer = None
    _trace_path = None
    _trace_file = None
    return summary


def enabled() -> bool:
    """True when a registry or tracer is active."""
    return _metrics is not None or _tracer is not None


def metrics() -> Optional[MetricsRegistry]:
    """The active registry, or ``None`` when metrics are off."""
    return _metrics


def tracer() -> Optional[Tracer]:
    """The active tracer, or ``None`` when tracing is off."""
    return _tracer


def trace_path() -> Optional[str]:
    """The active trace file path, if tracing to a path."""
    return _trace_path


# ---------------------------------------------------------------------- #
# Hot-path helpers (the no-op guard)
# ---------------------------------------------------------------------- #
def span(name: str, **attrs: object):
    """A tracing span; the shared no-op singleton when tracing is off."""
    t = _tracer
    if t is None:
        return NULL_SPAN
    return t.span(name, **attrs)


def event(name: str, **attrs: object) -> None:
    """A point trace event; nothing when tracing is off."""
    t = _tracer
    if t is not None:
        t.event(name, **attrs)


def record_span(name: str, duration: float, **attrs: object) -> None:
    """A back-dated span measured elsewhere; nothing when tracing is off."""
    t = _tracer
    if t is not None:
        t.record_span(name, duration, **attrs)


def count(name: str, amount: int = 1) -> None:
    """Bump counter ``name``; nothing when metrics are off."""
    m = _metrics
    if m is not None:
        m.counter(name).inc(amount)


def observe(
    name: str, value: float, edges: Sequence[float] = DEFAULT_LATENCY_EDGES
) -> None:
    """Observe ``value`` into histogram ``name``; nothing when metrics off."""
    m = _metrics
    if m is not None:
        m.histogram(name, edges).observe(value)


def set_gauge(name: str, value: float) -> None:
    """Set gauge ``name``; nothing when metrics are off."""
    m = _metrics
    if m is not None:
        m.gauge(name).set(value)


def kernel_call(name: str, size: int = 0) -> None:
    """Count one routing-kernel invocation and its input size (rows).

    Folded under ``kernel.<name>.calls`` / ``kernel.<name>.rows`` — the
    per-kernel ledger the ROADMAP's compilation tier will gate against.
    """
    m = _metrics
    if m is not None:
        m.counter(f"kernel.{name}.calls").inc()
        if size:
            m.counter(f"kernel.{name}.rows").inc(int(size))


def register_cache(cache: object) -> None:
    """Fold ``cache``'s counters into registry snapshots (weakly held)."""
    m = _metrics
    if m is not None:
        m.attach_cache(cache)


def summary_line() -> str:
    """The greppable ``TELEMETRY spans= events=`` one-liner for CLI output."""
    t = _tracer
    spans = t.spans if t is not None else 0
    events = t.events if t is not None else 0
    line = f"TELEMETRY spans={spans} events={events}"
    if _trace_path is not None:
        line += f" trace={_trace_path}"
    return line


__all__ = [
    "count",
    "disable",
    "enable",
    "enabled",
    "event",
    "kernel_call",
    "metrics",
    "observe",
    "record_span",
    "register_cache",
    "set_gauge",
    "span",
    "summary_line",
    "trace_path",
    "tracer",
]
