"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

The registry is pure bookkeeping — it never reads a wall clock and
nothing it stores feeds back into a simulation result, so enabling it
cannot perturb byte-determinism (see ``docs/observability.md`` for the
contract).  Timings *observed into* histograms come from callers'
``time.perf_counter()`` deltas; they live only in the registry and in
trace files, never in an :class:`~repro.core.engine.EpochRecord` or a
stored sweep cell.

Three instrument kinds cover the repo's needs:

* :class:`Counter` — monotone event counts (cache hits, kernel calls,
  claims/reclaims, served lookups);
* :class:`Gauge` — last-written values (subscriber queue depth, live
  cache entries);
* :class:`Histogram` — distributions over **fixed bucket edges** chosen
  at creation (request latencies).  Fixed edges keep two snapshots of
  the same metric mergeable and make the Prometheus rendering stable.

Caches register themselves through :meth:`MetricsRegistry.attach_cache`
(held by weakref, so the registry never extends an engine's lifetime);
their bespoke per-instance counters are folded into the snapshot under
``cache.*`` names at read time — zero cost on the cache hot path.
"""

from __future__ import annotations

import weakref
from bisect import bisect_left
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: Default latency bucket edges (seconds), log-ish spaced 100 µs → 10 s.
DEFAULT_LATENCY_EDGES: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: Cache counter fields folded into the snapshot (summed across caches).
CACHE_COUNTER_FIELDS = ("hits", "misses", "repairs", "restamps", "drops")


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A last-written value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A distribution over fixed, strictly increasing bucket edges.

    Bucket ``i`` counts observations ``v <= edges[i]`` not already
    counted by a smaller bucket (Prometheus ``le`` semantics, stored
    non-cumulatively); the final overflow bucket counts ``v > edges[-1]``.
    """

    __slots__ = ("name", "edges", "counts", "sum", "count")

    def __init__(self, name: str, edges: Sequence[float] = DEFAULT_LATENCY_EDGES):
        edges = tuple(float(e) for e in edges)
        if not edges or any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError(
                f"histogram {name!r} needs strictly increasing, non-empty edges"
            )
        self.name = name
        self.edges = edges
        self.counts = [0] * (len(edges) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.edges, value)] += 1
        self.sum += value
        self.count += 1

    def as_dict(self) -> Dict[str, object]:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


def _prometheus_name(name: str) -> str:
    cleaned = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return f"repro_{cleaned}"


class MetricsRegistry:
    """One process's metrics: named instruments plus read-time collectors."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._caches: List["weakref.ref"] = []
        self._collectors: List[Callable[[], Dict[str, float]]] = []

    # ------------------------------------------------------------------ #
    # Instrument accessors (create-on-first-use, stable thereafter)
    # ------------------------------------------------------------------ #
    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(
        self, name: str, edges: Sequence[float] = DEFAULT_LATENCY_EDGES
    ) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name, edges)
        return histogram

    # ------------------------------------------------------------------ #
    # Read-time collection
    # ------------------------------------------------------------------ #
    def attach_cache(self, cache: object) -> None:
        """Fold ``cache``'s counters into snapshots (weakref — no pinning)."""
        self._caches.append(weakref.ref(cache))

    def register_collector(self, collect: Callable[[], Dict[str, float]]) -> None:
        """Register a callable whose dict of name→value joins each snapshot."""
        self._collectors.append(collect)

    def _cache_counters(self) -> Dict[str, float]:
        folded: Dict[str, float] = {}
        live = 0
        entries = 0
        for ref in self._caches:
            cache = ref()
            if cache is None:
                continue
            live += 1
            entries += len(cache)
            for field in CACHE_COUNTER_FIELDS:
                folded[f"cache.{field}"] = folded.get(f"cache.{field}", 0) + int(
                    getattr(cache, field, 0)
                )
        if live:
            folded["cache.instances"] = live
            folded["cache.entries"] = entries
        return folded

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready view: counters (instruments + caches + collectors),
        gauges, and histograms."""
        counters: Dict[str, float] = {
            name: counter.value for name, counter in sorted(self._counters.items())
        }
        counters.update(sorted(self._cache_counters().items()))
        for collect in self._collectors:
            for name, value in sorted(collect().items()):
                counters[name] = counters.get(name, 0) + value
        return {
            "counters": counters,
            "gauges": {
                name: gauge.value for name, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                name: histogram.as_dict()
                for name, histogram in sorted(self._histograms.items())
            },
        }

    def render_prometheus(self) -> str:
        """Prometheus text exposition of the current snapshot."""
        snap = self.snapshot()
        lines: List[str] = []
        for name, value in snap["counters"].items():
            metric = _prometheus_name(name)
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {value}")
        for name, value in snap["gauges"].items():
            metric = _prometheus_name(name)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {value}")
        for name, data in snap["histograms"].items():
            metric = _prometheus_name(name)
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for edge, count in zip(data["edges"], data["counts"]):
                cumulative += count
                lines.append(f'{metric}_bucket{{le="{edge}"}} {cumulative}')
            cumulative += data["counts"][-1]
            lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{metric}_sum {data['sum']}")
            lines.append(f"{metric}_count {data['count']}")
        return "\n".join(lines) + "\n"


class NullSpan:
    """Reusable no-op context manager — the disabled span singleton."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


#: The one NullSpan every disabled ``span()`` call returns (no allocation).
NULL_SPAN = NullSpan()


__all__ = [
    "CACHE_COUNTER_FIELDS",
    "Counter",
    "DEFAULT_LATENCY_EDGES",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "NullSpan",
]
