"""Deterministic tracing, metrics, and phase-level profiling.

The repo-wide observability layer (see ``docs/observability.md``):

* :mod:`repro.telemetry.registry` — counters, gauges, fixed-bucket
  histograms, and the Prometheus text rendering;
* :mod:`repro.telemetry.trace` — the span tracer emitting JSONL events
  with monotonic timings;
* :mod:`repro.telemetry.runtime` — process-wide enable/disable and the
  zero-cost-when-off hot-path helpers re-exported here;
* :mod:`repro.telemetry.summarize` — ``repro trace summarize``;
* :mod:`repro.telemetry.diagnostics` — pooled cache stats and the
  one list of diagnostics keys parity asserts must pop.

Typical use::

    from repro import telemetry

    telemetry.enable(trace="out.jsonl")
    with telemetry.span("epoch.steps", epoch=3):
        ...
    telemetry.count("engine.rewirings", 2)
    print(telemetry.summary_line())   # TELEMETRY spans=.. events=..
    telemetry.disable()

Everything telemetry records is observational: results are
byte-identical with telemetry on and off, and no wall-clock reading may
enter a result-bearing path.
"""

from repro.telemetry.registry import (
    DEFAULT_LATENCY_EDGES,
    NULL_SPAN,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullSpan,
)
from repro.telemetry.runtime import (
    count,
    disable,
    enable,
    enabled,
    event,
    kernel_call,
    metrics,
    observe,
    record_span,
    register_cache,
    set_gauge,
    span,
    summary_line,
    trace_path,
    tracer,
)
from repro.telemetry.trace import TRACE_SCHEMA_VERSION, Tracer

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_EDGES",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "NullSpan",
    "TRACE_SCHEMA_VERSION",
    "Tracer",
    "count",
    "disable",
    "enable",
    "enabled",
    "event",
    "kernel_call",
    "metrics",
    "observe",
    "record_span",
    "register_cache",
    "set_gauge",
    "span",
    "summary_line",
    "trace_path",
    "tracer",
]
