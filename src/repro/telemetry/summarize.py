"""Per-phase summarisation of a JSONL trace — `repro trace summarize`.

Rebuilds span nesting from ``(ts, dur)`` interval containment and
attributes every traced moment to exactly one phase via **self time**
(a span's duration minus its children's durations), so the per-phase
totals sum to the traced wall-clock with no double counting.  The
``coverage`` figure — the fraction of the trace's wall-clock span lying
inside any top-level span — is the CI gate's "phase totals cover >90%
of wall-clock" number.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Union

from repro.telemetry.trace import TRACE_SCHEMA_VERSION
from repro.util.validation import ValidationError

#: Interval-containment slack for float start/end comparisons.
_EPS = 1e-9


def read_trace(source: Union[str, Iterable[str]]) -> Dict[str, object]:
    """Parse a trace (path or iterable of JSONL lines) into its records.

    Returns ``{"header": ..., "spans": [...], "events": [...],
    "end": ...}``; a missing footer (a crashed producer) is tolerated,
    a malformed line or unknown schema is not.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    else:
        lines = list(source)
    header = None
    end = None
    spans: List[Dict[str, object]] = []
    events: List[Dict[str, object]] = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValidationError(f"trace line {lineno} is not valid JSON: {error}")
        if not isinstance(record, dict):
            raise ValidationError(f"trace line {lineno} is not an object")
        kind = record.get("kind")
        if kind == "begin":
            schema = record.get("schema")
            if schema != TRACE_SCHEMA_VERSION:
                raise ValidationError(
                    f"unsupported trace schema {schema!r} "
                    f"(this build reads schema {TRACE_SCHEMA_VERSION})"
                )
            header = record
        elif kind == "span":
            spans.append(record)
        elif kind == "event":
            events.append(record)
        elif kind == "end":
            end = record
        else:
            raise ValidationError(f"trace line {lineno} has unknown kind {kind!r}")
    if header is None:
        raise ValidationError("trace has no begin record (not a trace file?)")
    if end is not None and (
        end.get("spans") != len(spans) or end.get("events") != len(events)
    ):
        raise ValidationError(
            "trace footer disagrees with its body: "
            f"footer says spans={end.get('spans')} events={end.get('events')}, "
            f"body has spans={len(spans)} events={len(events)}"
        )
    return {"header": header, "spans": spans, "events": events, "end": end}


def summarize(trace: Dict[str, object]) -> Dict[str, object]:
    """Aggregate a parsed trace into the per-phase time table."""
    spans = list(trace["spans"])
    events = list(trace["events"])
    if not spans and not events:
        return {
            "wall": 0.0,
            "coverage": 0.0,
            "spans": 0,
            "events": 0,
            "phases": [],
            "events_by_name": {},
        }
    stamps = [float(s["ts"]) for s in spans] + [float(e["ts"]) for e in events]
    ends = [float(s["ts"]) + float(s["dur"]) for s in spans] or stamps
    wall = max(max(ends), max(stamps)) - min(stamps)

    # Self-time attribution: process spans in start order with a stack
    # of currently-open intervals; a span not contained by the stack top
    # closes it (its self time is its duration minus its children's).
    ordered = sorted(
        spans,
        key=lambda s: (float(s["ts"]), -float(s["dur"]), int(s.get("depth", 0))),
    )
    totals: Dict[str, Dict[str, float]] = {}
    stack: List[List[object]] = []  # [record, child_sum]
    top_level = 0.0

    def account(record: Dict[str, object], child_sum: float) -> None:
        name = str(record["name"])
        phase = totals.setdefault(name, {"count": 0, "total": 0.0, "self": 0.0})
        phase["count"] += 1
        phase["total"] += float(record["dur"])
        phase["self"] += max(0.0, float(record["dur"]) - child_sum)

    def contains(outer: Dict[str, object], inner: Dict[str, object]) -> bool:
        o_start, o_end = float(outer["ts"]), float(outer["ts"]) + float(outer["dur"])
        i_start, i_end = float(inner["ts"]), float(inner["ts"]) + float(inner["dur"])
        return o_start - _EPS <= i_start and i_end <= o_end + _EPS

    def pop() -> None:
        record, child_sum = stack.pop()
        account(record, child_sum)
        if stack:
            stack[-1][1] += float(record["dur"])

    for span in ordered:
        while stack and not contains(stack[-1][0], span):
            pop()
        if not stack:
            top_level += float(span["dur"])
        stack.append([span, 0.0])
    while stack:
        pop()

    coverage = min(1.0, top_level / wall) if wall > 0 else 0.0
    phases = [
        {
            "name": name,
            "count": int(data["count"]),
            "total": data["total"],
            "self": data["self"],
            "pct": (data["self"] / wall * 100.0) if wall > 0 else 0.0,
        }
        for name, data in totals.items()
    ]
    phases.sort(key=lambda p: (-p["self"], p["name"]))
    events_by_name: Dict[str, int] = {}
    for event in events:
        name = str(event["name"])
        events_by_name[name] = events_by_name.get(name, 0) + 1
    return {
        "wall": wall,
        "coverage": coverage,
        "spans": len(spans),
        "events": len(events),
        "phases": phases,
        "events_by_name": dict(sorted(events_by_name.items())),
    }


def format_summary(summary: Dict[str, object]) -> str:
    """The human table: one row per phase, self-time-ranked, plus footer."""
    lines = [
        f"{'phase':<32} {'count':>7} {'total s':>10} {'self s':>10} {'% wall':>7}"
    ]
    for phase in summary["phases"]:
        lines.append(
            f"{phase['name']:<32} {phase['count']:>7d} "
            f"{phase['total']:>10.4f} {phase['self']:>10.4f} "
            f"{phase['pct']:>6.1f}%"
        )
    lines.append(
        f"TRACE wall={summary['wall']:.4f}s "
        f"coverage={summary['coverage'] * 100.0:.1f}% "
        f"spans={summary['spans']} events={summary['events']}"
    )
    return "\n".join(lines)


__all__ = ["format_summary", "read_trace", "summarize"]
