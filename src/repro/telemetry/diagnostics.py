"""Diagnostics plumbing shared by results, tests, and CI.

Two jobs live here:

* **One implementation of pooled route-cache stats.**
  :func:`pooled_cache_stats` sums per-cache counters and recomputes the
  pooled hit rate; :meth:`EngineBatch.cache_stats` and
  :meth:`SimulationSession.cache_stats` are now thin deprecation shims
  over it (their dict shape is unchanged), and the same numbers appear
  in a live :class:`~repro.telemetry.registry.MetricsRegistry` snapshot
  under ``cache.*`` — the registry is the forward-looking surface, the
  ``metadata["cache"]`` block the compatibility one.

* **One list of diagnostics keys.**  ``metadata`` entries named in
  :data:`DIAGNOSTIC_KEYS` are observational (cache counters differ
  legitimately between the fused and sequential kernel paths) and must
  be excluded from cross-path byte-equality asserts.  Use
  :func:`strip_diagnostics` instead of per-call-site ``pop("cache")``
  copies so a newly added diagnostics key cannot silently break the
  parity gates.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

#: Result-``metadata`` keys that are diagnostics, not results: they may
#: differ between equally-correct executions (fused vs sequential, any
#: worker count) and are popped before cross-path equality asserts.
#: ``telemetry`` is reserved: nothing writes it into stored results
#: today — and nothing may, see the determinism contract in
#: ``docs/observability.md`` — but tooling that learns to inject local
#: snapshots must already be covered by the parity helpers.
DIAGNOSTIC_KEYS = ("cache", "telemetry")

#: Counter fields summed across caches (``hit_rate`` is recomputed).
POOLED_FIELDS = ("hits", "misses", "repairs", "restamps", "drops", "entries")


def pooled_cache_stats(caches: Iterable[object]) -> Dict[str, float]:
    """Summed counters plus the pooled hit rate over ``caches``.

    ``caches`` yields :class:`~repro.core.route_cache.ResidualRouteCache`
    instances (``None`` entries are skipped).  The pooled ``hit_rate``
    is recomputed from the summed hits/misses rather than averaged, so
    it weights caches by their traffic.
    """
    totals = {field: 0.0 for field in POOLED_FIELDS}
    for cache in caches:
        if cache is None:
            continue
        stats = cache.stats()
        for field in POOLED_FIELDS:
            totals[field] += stats.get(field, 0.0)
    lookups = totals["hits"] + totals["misses"]
    totals["hit_rate"] = totals["hits"] / lookups if lookups else 0.0
    return totals


def merge_cache_stats(parts: Iterable[Optional[Dict[str, float]]]) -> Dict[str, float]:
    """Pool already-aggregated stats dicts (summed, hit rate recomputed)."""
    totals: Dict[str, float] = {}
    for part in parts:
        if not part:
            continue
        for key, value in part.items():
            if key != "hit_rate":
                totals[key] = totals.get(key, 0.0) + value
    lookups = totals.get("hits", 0.0) + totals.get("misses", 0.0)
    totals["hit_rate"] = totals.get("hits", 0.0) / lookups if lookups else 0.0
    return totals


def pop_diagnostics(metadata: Dict[str, object]) -> Dict[str, object]:
    """Remove every :data:`DIAGNOSTIC_KEYS` entry from a metadata dict.

    Returns the popped entries so asserts about the diagnostics
    themselves (e.g. "the fused cache out-hits the sequential one")
    still have the data.
    """
    return {
        key: metadata.pop(key) for key in DIAGNOSTIC_KEYS if key in metadata
    }


def strip_diagnostics(document: Dict[str, object]) -> Dict[str, object]:
    """:func:`pop_diagnostics` for whole result documents.

    Accepts an ``ExperimentResult.as_dict()`` payload (a ``metadata``
    key), a sweep-store cell document (``result.metadata``), or a bare
    metadata mapping, mutating it in place; returns the popped
    diagnostics.
    """
    metadata = document
    if isinstance(document.get("metadata"), dict):
        metadata = document["metadata"]
    elif isinstance(document.get("result"), dict) and isinstance(
        document["result"].get("metadata"), dict
    ):
        metadata = document["result"]["metadata"]
    return pop_diagnostics(metadata)


__all__ = [
    "DIAGNOSTIC_KEYS",
    "POOLED_FIELDS",
    "merge_cache_stats",
    "pooled_cache_stats",
    "pop_diagnostics",
    "strip_diagnostics",
]
