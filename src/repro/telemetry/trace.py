"""Span-based tracer emitting JSONL trace events with monotonic timings.

One trace file is a stream of JSON objects, one per line:

* ``{"kind": "begin", "schema": 1, "clock": "perf_counter"}`` — header;
* ``{"kind": "span", "seq": 7, "name": "epoch.steps", "ts": 0.0123,
  "dur": 0.0045, "depth": 1, "attrs": {"epoch": 3}}`` — one completed
  span (``ts`` is the start offset from the tracer's origin, ``dur``
  its duration, both from :func:`time.perf_counter`, so timings are
  monotonic and immune to wall-clock steps);
* ``{"kind": "event", "seq": 9, "name": "sweep.cell.failed", "ts": ...,
  "attrs": {...}}`` — one point event;
* ``{"kind": "end", "spans": N, "events": M}`` — footer.

Spans are written at *exit*, so file order is completion order; the
``ts``/``dur``/``depth`` fields carry enough structure for
:mod:`repro.telemetry.summarize` to rebuild nesting.  Nothing here is
result-bearing: trace timestamps exist only in the trace sink, never in
an ``EpochRecord`` or a stored sweep cell (``docs/observability.md``).
"""

from __future__ import annotations

import json
import threading
import time
from typing import Dict, List, Optional, TextIO, Union

#: Trace file schema version (bumped on incompatible event changes).
TRACE_SCHEMA_VERSION = 1

Sink = Union[TextIO, List[Dict[str, object]]]


class Span:
    """One live span; use as a context manager (emitted on exit)."""

    __slots__ = ("_tracer", "name", "attrs", "_start", "_depth")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, object]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self._start = 0.0
        self._depth = 0

    def __enter__(self) -> "Span":
        local = self._tracer._local
        self._depth = getattr(local, "depth", 0)
        local.depth = self._depth + 1
        self._start = self._tracer._clock()
        return self

    def __exit__(self, *exc: object) -> bool:
        end = self._tracer._clock()
        self._tracer._local.depth = self._depth
        self._tracer._emit_span(
            self.name, self._start, end - self._start, self._depth, self.attrs
        )
        return False


class Tracer:
    """Writes spans and point events to a JSONL sink.

    ``sink`` may be an open text file (one JSON object per line) or a
    plain list (dicts appended — handy in tests).  Thread-safe: emission
    is serialised by a lock and nesting depth is tracked per thread.
    """

    def __init__(self, sink: Sink, *, clock=time.perf_counter):
        self._sink = sink
        self._clock = clock
        self._origin = clock()
        self._lock = threading.Lock()
        self._local = threading.local()
        self._seq = 0
        self._closed = False
        self.spans = 0
        self.events = 0
        self._write(
            {"kind": "begin", "schema": TRACE_SCHEMA_VERSION, "clock": "perf_counter"}
        )

    # ------------------------------------------------------------------ #
    # Emission
    # ------------------------------------------------------------------ #
    def span(self, name: str, **attrs: object) -> Span:
        """A live span; ``with tracer.span("epoch.rewire", node=i): ...``."""
        return Span(self, name, attrs)

    def event(self, name: str, **attrs: object) -> None:
        """One point event (no duration)."""
        record: Dict[str, object] = {
            "kind": "event",
            "name": name,
            "ts": round(self._clock() - self._origin, 9),
        }
        if attrs:
            record["attrs"] = attrs
        with self._lock:
            record["seq"] = self._seq
            self._seq += 1
            self.events += 1
            self._write(record)

    def record_span(self, name: str, duration: float, **attrs: object) -> None:
        """Record a span measured elsewhere (e.g. a pool worker's cell).

        The span is back-dated so it ends now; ``depth`` is the caller's
        current nesting depth, as if the span had been entered inline.
        """
        now = self._clock() - self._origin
        duration = max(0.0, float(duration))
        self._emit_span(
            name,
            self._origin + now - duration,
            duration,
            getattr(self._local, "depth", 0),
            attrs,
        )

    def _emit_span(
        self,
        name: str,
        start: float,
        duration: float,
        depth: int,
        attrs: Dict[str, object],
    ) -> None:
        record: Dict[str, object] = {
            "kind": "span",
            "name": name,
            "ts": round(start - self._origin, 9),
            "dur": round(duration, 9),
            "depth": depth,
        }
        if attrs:
            record["attrs"] = attrs
        with self._lock:
            record["seq"] = self._seq
            self._seq += 1
            self.spans += 1
            self._write(record)

    def _write(self, record: Dict[str, object]) -> None:
        if self._closed:
            return
        if isinstance(self._sink, list):
            self._sink.append(record)
        else:
            self._sink.write(json.dumps(record, separators=(",", ":")) + "\n")

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> Dict[str, int]:
        """Emit the footer, flush, and return ``{"spans": N, "events": M}``."""
        with self._lock:
            if not self._closed:
                self._write({"kind": "end", "spans": self.spans, "events": self.events})
                self._closed = True
                flush = getattr(self._sink, "flush", None)
                if flush is not None:
                    flush()
        return {"spans": self.spans, "events": self.events}


__all__ = ["Span", "TRACE_SCHEMA_VERSION", "Tracer"]
