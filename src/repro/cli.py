"""Command-line interface: run any registered scenario.

Usage::

    python -m repro.cli list [--json]
    python -m repro.cli run fig1-delay-ping --n 50 --k 2,3,4,5,6,7,8
    python -m repro.cli run fig2-churn-rate --n 24 --seed 7 --output fig2.json
    python -m repro.cli run --spec scenario.json
    python -m repro.cli spec fig3-epsilon --n 30 --output scenario.json
    python -m repro.cli sweep scenarios/fig_all.json --workers 4 --resume
    python -m repro.cli sweep scenarios/fig_all.json --status --store /mnt/sweeps/run1
    python -m repro.cli sweep-worker scenarios/fig_all.json --store shared-fs:/mnt/sweeps/run1
    python -m repro.cli serve --spec scenarios/serve_smoke.json --socket /tmp/overlay.sock
    python -m repro.cli serve-load --socket /tmp/overlay.sock --model multipath --lookups 1000000
    python -m repro.cli serve-replay serve-log.jsonl
    python -m repro.cli run fig3-rewirings --trace trace.jsonl
    python -m repro.cli trace summarize trace.jsonl --check-coverage 0.9

``run`` builds the named experiment's default
:class:`~repro.scenario.spec.ScenarioSpec`, applies the command-line
overrides, executes it through a
:class:`~repro.scenario.session.SimulationSession`, prints the series as
a tab-separated table, and optionally writes the full result as JSON.
``--spec`` loads a previously saved spec instead — re-running a saved
spec reproduces the exact same result.  ``spec`` writes the
would-be-executed spec as JSON without running it.

``sweep`` expands a :class:`~repro.sweep.template.SweepTemplate` (or an
``include`` corpus like ``scenarios/fig_all.json``) into its cell grid,
executes the cells across a worker pool into a content-addressed
:class:`~repro.sweep.store.SweepStore` (``--resume`` skips completed
cells, so an interrupted sweep picks up where it died), and prints the
aggregated per-experiment tables.  ``--dry-run`` prints the plan —
which cells exist, their spec hashes, and which are already complete —
without running anything.  ``--status`` reports live corpus progress
(done/claimed/orphaned/failed/pending, per-host throughput) from the
store's claim and completion records.

``sweep-worker`` is the distributed counterpart: it drains unclaimed
cells of a corpus from a (typically shared) store until everything is
done, speaking the coordinator-free claim protocol of
:mod:`repro.sweep.dist` — run any number of workers on any number of
hosts against one ``--store`` directory (``shared-fs:PATH`` for NFS-style
mounts) and they partition the corpus between them, reclaiming the cells
of workers that die mid-cell once their lease expires.

``serve`` holds a spec's deployments live behind a local socket (see
:mod:`repro.serve`), ``serve-load`` measures a running server with a
traffic-model workload, and ``serve-replay`` re-runs a server's mutation
log through the batch engine and digest-checks every served epoch.

Telemetry (see :mod:`repro.telemetry` and ``docs/observability.md``):
``run --trace out.jsonl`` and ``sweep --trace out.jsonl`` record a
span-level JSONL trace of the execution (``sweep --telemetry`` enables
the metrics registry without a trace file); both print a greppable
``# TELEMETRY spans=... events=...`` line.  ``trace summarize`` turns a
trace into a per-phase self-time table and can gate on attribution
coverage (``--check-coverage 0.9``).  ``serve --metrics-port`` exposes
the live registry as a Prometheus text endpoint.  None of it changes any
result: records and stored cells are byte-identical with telemetry on or
off.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional, Sequence

from repro.scenario.registry import resolve, scenario_names
from repro.scenario.session import SimulationSession
from repro.scenario.spec import ScenarioSpec
from repro.sweep import (
    SweepStore,
    aggregate_cells,
    expand_corpus,
    load_templates,
    run_sweep,
)
from repro.telemetry import runtime as telemetry
from repro.util.validation import ValidationError


def _parse_int_list(text: str) -> tuple:
    return tuple(int(part) for part in text.split(",") if part.strip())


def _parse_float_list(text: str) -> tuple:
    return tuple(float(part) for part in text.split(",") if part.strip())


def _parse_param_value(text: str):
    """Best-effort literal parsing of a ``--param key=value`` value.

    Comma-separated values become lists; each piece is tried as JSON
    (numbers, booleans, null — with Python-style ``True``/``False``/
    ``None`` capitalisation accepted too) and falls back to a plain
    string.
    """
    _literals = {"true": True, "false": False, "none": None, "null": None}

    def atom(piece: str):
        lowered = piece.lower()
        if lowered in _literals:
            return _literals[lowered]
        try:
            return json.loads(piece)
        except json.JSONDecodeError:
            return piece

    parts = [piece.strip() for piece in text.split(",")]
    if len(parts) > 1:
        return [atom(piece) for piece in parts if piece]
    return atom(parts[0])


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate figures from 'EGOIST: Overlay Routing using Selfish Neighbor Selection'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser("list", help="list the available experiments")
    list_cmd.add_argument(
        "--json",
        action="store_true",
        help=(
            "machine-readable registry dump (name, help, default spec, "
            "smoke args), deterministically ordered by name"
        ),
    )

    def add_run_options(command: argparse.ArgumentParser, *, with_run_outputs: bool):
        command.add_argument(
            "experiment",
            nargs="?",
            default=None,
            help="experiment to run (see 'repro list')",
        )
        command.add_argument("--n", type=int, default=None, help="number of overlay nodes")
        command.add_argument(
            "--k",
            type=_parse_int_list,
            default=None,
            help="comma-separated neighbour budgets (single value for fixed-k experiments)",
        )
        command.add_argument("--seed", type=int, default=None, help="random seed")
        command.add_argument(
            "--epochs", type=int, default=None, help="engine epochs (time-driven experiments)"
        )
        command.add_argument(
            "--trials", type=int, default=None, help="trials per point (sampling experiments)"
        )
        command.add_argument(
            "--br-rounds", type=int, default=None, help="best-response dynamics rounds"
        )
        command.add_argument(
            "--churn-rates",
            type=_parse_float_list,
            default=None,
            help="comma-separated churn rates (fig2-churn-rate)",
        )
        command.add_argument(
            "--param",
            action="append",
            default=[],
            metavar="KEY=VALUE",
            help="experiment-specific parameter override (repeatable)",
        )
        if with_run_outputs:
            command.add_argument(
                "--verbose",
                action="store_true",
                help=(
                    "print execution diagnostics after the series (route-cache "
                    "hits/misses/repairs and hit rate for epoch-loop scenarios)"
                ),
            )
            command.add_argument(
                "--spec",
                type=str,
                default=None,
                help=(
                    "run a ScenarioSpec JSON file instead of a named experiment "
                    "(other overrides still apply on top)"
                ),
            )
            command.add_argument(
                "--sequential",
                action="store_true",
                help="use the bit-identical sequential reference kernels",
            )
            command.add_argument(
                "--trace",
                type=str,
                default=None,
                metavar="PATH",
                help=(
                    "record a telemetry trace (JSONL) of the run to this path; "
                    "summarize it with 'repro trace summarize PATH'"
                ),
            )
        command.add_argument(
            "--output",
            type=str,
            default=None,
            help="write the result (or, for 'spec', the spec) as JSON to this path",
        )

    run = sub.add_parser("run", help="run one experiment and print its series")
    add_run_options(run, with_run_outputs=True)

    spec_cmd = sub.add_parser(
        "spec", help="print (or save) an experiment's ScenarioSpec as JSON"
    )
    add_run_options(spec_cmd, with_run_outputs=False)

    sweep_cmd = sub.add_parser(
        "sweep",
        help="expand a sweep template over its axes and run the cells in parallel",
    )
    sweep_cmd.add_argument(
        "template", help="sweep template (or corpus 'include') JSON file"
    )
    sweep_cmd.add_argument(
        "--workers", type=int, default=1, help="worker-pool size (1 = inline)"
    )
    sweep_cmd.add_argument(
        "--resume",
        action="store_true",
        help="skip cells already completed in the store",
    )
    sweep_cmd.add_argument(
        "--dry-run",
        action="store_true",
        help="print the expanded cell plan (and completion state) without running",
    )
    sweep_cmd.add_argument(
        "--status",
        action="store_true",
        help=(
            "report corpus progress (done/claimed/orphaned/failed/pending and "
            "per-host throughput) from the store's claim records, without running"
        ),
    )
    sweep_cmd.add_argument(
        "--json",
        action="store_true",
        help="emit the --dry-run plan (or --status report) as JSON (for tooling)",
    )
    sweep_cmd.add_argument(
        "--store",
        type=str,
        default=None,
        help=(
            "sweep store directory (default: sweep-store/<template-name>); "
            "prefix with a backend, e.g. shared-fs:/mnt/sweeps/run1"
        ),
    )
    sweep_cmd.add_argument(
        "--lease",
        type=float,
        default=None,
        help="work-claim lease seconds (matters when other workers share the store)",
    )
    sweep_cmd.add_argument(
        "--output",
        type=str,
        default=None,
        help="directory for the aggregated per-experiment result JSON files",
    )
    sweep_cmd.add_argument(
        "--sequential",
        action="store_true",
        help="use the bit-identical sequential reference kernels in every cell",
    )
    sweep_cmd.add_argument(
        "--telemetry",
        action="store_true",
        help=(
            "enable the telemetry metrics registry for this sweep and print "
            "the TELEMETRY summary line (stored cells stay byte-identical)"
        ),
    )
    sweep_cmd.add_argument(
        "--trace",
        type=str,
        default=None,
        metavar="PATH",
        help="record a telemetry trace (JSONL) of the sweep to this path",
    )

    worker_cmd = sub.add_parser(
        "sweep-worker",
        help=(
            "drain a sweep corpus cooperatively: claim, execute, and store "
            "unclaimed cells until the corpus is done (run N of these on N hosts)"
        ),
    )
    worker_cmd.add_argument(
        "template", help="sweep template (or corpus 'include') JSON file"
    )
    worker_cmd.add_argument(
        "--store",
        type=str,
        default=None,
        help=(
            "shared sweep store directory (default: sweep-store/<template-name>); "
            "prefix with a backend, e.g. shared-fs:/mnt/sweeps/run1"
        ),
    )
    worker_cmd.add_argument(
        "--lease",
        type=float,
        default=None,
        help="claim lease seconds (heartbeats renew at lease/4; default 60)",
    )
    worker_cmd.add_argument(
        "--poll",
        type=float,
        default=0.5,
        help="seconds between rescans while waiting on other workers' cells",
    )
    worker_cmd.add_argument(
        "--max-cells",
        type=int,
        default=None,
        help="stop after executing this many cells here (default: unlimited)",
    )
    worker_cmd.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="give up waiting after this many idle seconds (default: wait forever)",
    )
    worker_cmd.add_argument(
        "--retry-failed",
        action="store_true",
        help="re-attempt cells other workers marked failed (clears their records)",
    )
    worker_cmd.add_argument(
        "--sequential",
        action="store_true",
        help="use the bit-identical sequential reference kernels in every cell",
    )

    serve_cmd = sub.add_parser(
        "serve", help="hold a scenario's deployments live behind a local socket"
    )
    serve_cmd.add_argument(
        "--spec", type=str, required=True, help="ScenarioSpec JSON file to serve"
    )
    _add_endpoint_options(serve_cmd)
    serve_cmd.add_argument(
        "--cadence",
        type=float,
        default=0.0,
        help="seconds between automatic epochs (0 = advance only on 'step' requests)",
    )
    serve_cmd.add_argument(
        "--warmup-epochs",
        type=int,
        default=1,
        help="epochs to commit before accepting connections (so lookups have an overlay)",
    )
    serve_cmd.add_argument(
        "--log",
        type=str,
        default=None,
        help="append the replayable mutation log (JSONL) to this path",
    )
    serve_cmd.add_argument(
        "--sequential",
        action="store_true",
        help="use the bit-identical sequential reference kernels",
    )
    serve_cmd.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        help=(
            "also expose the telemetry registry as a Prometheus text "
            "endpoint on this TCP port (0 = ephemeral)"
        ),
    )
    serve_cmd.add_argument(
        "--checkpoint-dir",
        type=str,
        default=None,
        help=(
            "directory for periodic atomic session checkpoints (requires "
            "--log); enables bounded-replay crash recovery"
        ),
    )
    serve_cmd.add_argument(
        "--checkpoint-every",
        type=int,
        default=8,
        help=(
            "checkpoint (and rotate the log) every N epochs; 0 disables "
            "periodic checkpoints (default 8)"
        ),
    )
    serve_cmd.add_argument(
        "--keep-checkpoints",
        type=int,
        default=0,
        help=(
            "retain only the newest N checkpoints and compact older log "
            "segments (0 = keep everything so serve-replay covers the "
            "full history; default 0)"
        ),
    )
    serve_cmd.add_argument(
        "--queue-limit",
        type=int,
        default=None,
        help=(
            "admitted-request queue bound; excess requests get an "
            "immediate retryable 'busy' error (default 1024)"
        ),
    )
    serve_cmd.add_argument(
        "--supervise",
        action="store_true",
        help=(
            "run the server as a supervised child: restart on crash with "
            "bounded exponential backoff, recover the session from "
            "checkpoint + log on each restart"
        ),
    )
    serve_cmd.add_argument(
        "--restart-backoff",
        type=float,
        default=0.25,
        help="first restart delay, seconds (doubles per crash; --supervise)",
    )
    serve_cmd.add_argument(
        "--restart-cap",
        type=float,
        default=8.0,
        help="ceiling on the restart delay, seconds (--supervise)",
    )
    serve_cmd.add_argument(
        "--max-restarts",
        type=int,
        default=0,
        help=(
            "consecutive-crash budget before the supervisor gives up "
            "(0 = unbounded; --supervise)"
        ),
    )

    chaos_cmd = sub.add_parser(
        "chaos",
        help=(
            "SIGKILL a supervised server at random points under load and "
            "verify recovery: digest parity, zero acked-mutation loss, "
            "bounded replay"
        ),
    )
    chaos_cmd.add_argument(
        "scenario", help="chaos scenario JSON (scenarios/chaos_*.json)"
    )
    chaos_cmd.add_argument(
        "--workdir",
        type=str,
        default=None,
        help=(
            "directory for the run's artifacts — log chain, checkpoints, "
            "child output (default: a fresh chaos-<name> directory)"
        ),
    )
    chaos_cmd.add_argument(
        "--sequential",
        action="store_true",
        help="run both sides on the sequential reference kernels",
    )

    load_cmd = sub.add_parser(
        "serve-load", help="measure a running server with a traffic-model workload"
    )
    _add_endpoint_options(load_cmd)
    load_cmd.add_argument(
        "--model",
        choices=["uniform", "multipath", "realtime"],
        default="uniform",
        help="traffic model generating the lookup pairs",
    )
    load_cmd.add_argument(
        "--lookups", type=int, default=100_000, help="total lookups to issue"
    )
    load_cmd.add_argument(
        "--batch", type=int, default=256, help="lookups per lookup_batch frame"
    )
    load_cmd.add_argument("--seed", type=int, default=0, help="traffic-model seed")
    load_cmd.add_argument(
        "--engine",
        type=str,
        default=None,
        help="deployment label to query (default: the spec's first cell)",
    )
    load_cmd.add_argument(
        "--mutate",
        type=str,
        default=None,
        help=(
            "mutation JSON to enqueue (and commit with a 'step') halfway "
            "through the run, e.g. '{\"kind\": \"leave\", \"nodes\": [5]}'"
        ),
    )
    load_cmd.add_argument(
        "--shutdown",
        action="store_true",
        help="send 'shutdown' to the server after the run",
    )
    load_cmd.add_argument(
        "--output", type=str, default=None, help="write the report as JSON to this path"
    )

    replay_cmd = sub.add_parser(
        "serve-replay",
        help="re-run a serve mutation log and digest-check every served epoch",
    )
    replay_cmd.add_argument("log", help="mutation log (JSONL) written by 'serve --log'")
    replay_cmd.add_argument(
        "--sequential",
        action="store_true",
        help=(
            "replay on the sequential reference kernels regardless of what "
            "the serving process used (a cross-kernel parity check)"
        ),
    )
    replay_cmd.add_argument(
        "--checkpoints",
        type=str,
        default=None,
        metavar="DIR",
        help=(
            "start from the checkpoint the current segment resumes from "
            "(bounded-recovery parity) instead of replaying the full "
            "archived chain"
        ),
    )

    trace_cmd = sub.add_parser(
        "trace", help="inspect telemetry traces written by --trace"
    )
    trace_sub = trace_cmd.add_subparsers(dest="trace_command", required=True)
    summarize_cmd = trace_sub.add_parser(
        "summarize",
        help="per-phase self-time table (and coverage) of a trace JSONL",
    )
    summarize_cmd.add_argument(
        "trace", help="trace file written by 'run --trace' / 'sweep --trace'"
    )
    summarize_cmd.add_argument(
        "--json",
        action="store_true",
        help="emit the summary as JSON instead of the table",
    )
    summarize_cmd.add_argument(
        "--check-coverage",
        type=float,
        default=None,
        metavar="FRACTION",
        help=(
            "exit non-zero unless named spans attribute at least this "
            "fraction of the trace's wall-clock (e.g. 0.9)"
        ),
    )

    return parser


def _add_endpoint_options(command: argparse.ArgumentParser) -> None:
    """``--socket PATH`` or ``--host/--port`` (serve and serve-load)."""
    command.add_argument(
        "--socket", type=str, default=None, help="unix socket path to serve/connect on"
    )
    command.add_argument(
        "--host", type=str, default="127.0.0.1", help="TCP host (with --port)"
    )
    command.add_argument(
        "--port", type=int, default=None, help="TCP port to serve/connect on"
    )


def _apply_overrides(spec: ScenarioSpec, args: argparse.Namespace) -> ScenarioSpec:
    """Apply the CLI overrides the user actually passed onto ``spec``.

    Shared by named-experiment runs (overriding the registered default
    spec) and ``--spec`` runs (overriding the loaded file), so no flag is
    ever silently dropped.
    """
    overrides = {}
    if args.n is not None:
        overrides["n"] = args.n
    if args.k is not None:
        overrides["k_grid"] = args.k
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.epochs is not None:
        overrides["epochs"] = args.epochs
    if args.br_rounds is not None:
        overrides["br_rounds"] = args.br_rounds
    params = {}
    if args.trials is not None:
        params["trials"] = args.trials
    if args.churn_rates is not None:
        params["churn_rates"] = list(args.churn_rates)
    if args.k is not None and "k" in spec.params:
        # Fixed-k experiments read params["k"]; keep it in sync with --k.
        params["k"] = int(args.k[0])
    for item in args.param:
        if "=" not in item:
            raise ValidationError(f"--param {item!r} must be KEY=VALUE")
        key, value = item.split("=", 1)
        params[key.strip()] = _parse_param_value(value)
    if params:
        overrides["params"] = params
    spec = spec.override(**overrides)
    spec.validate()
    return spec


def _spec_from_args(args: argparse.Namespace) -> ScenarioSpec:
    """The scenario spec selected by the CLI arguments.

    Starts from the registered default spec of the named experiment and
    applies only the overrides the user actually passed, so every
    experiment keeps its own defaults (sample sizes, churn rates, ...).
    """
    if args.experiment is None:
        raise ValidationError("name an experiment (see 'repro list') or pass --spec")
    return _apply_overrides(resolve(args.experiment).default_spec(), args)


def _load_spec(path: str) -> ScenarioSpec:
    """Load a spec file, folding I/O and parse failures into CLI errors.

    Validation failures keep the spec's field-level message (which names
    the offending field) and gain the file path, so the exit-2 line says
    exactly which field of which file to fix.
    """
    try:
        return ScenarioSpec.load(path)
    except OSError as error:
        raise ValidationError(f"cannot read spec file {path!r}: {error}")
    except json.JSONDecodeError as error:
        raise ValidationError(f"spec file {path!r} is not valid JSON: {error}")
    except ValidationError as error:
        raise ValidationError(f"spec file {path!r}: {error}")


def _sweep_setup(args: argparse.Namespace):
    """Expand the corpus and open its store (shared by sweep/sweep-worker)."""
    templates = load_templates(args.template)
    cells = expand_corpus(templates)
    corpus = os.path.splitext(os.path.basename(args.template))[0]
    store_dir = args.store or os.path.join("sweep-store", corpus)
    return cells, corpus, store_dir, SweepStore(store_dir)


def _sweep(args: argparse.Namespace) -> int:
    """The ``sweep`` subcommand: expand, (dry-)run/status, aggregate."""
    if args.json and not (args.dry_run or args.status):
        raise ValidationError(
            "--json is the machine-readable plan: pass --dry-run (or --status) with it"
        )
    if args.dry_run and args.status:
        raise ValidationError("pass at most one of --dry-run and --status")
    cells, corpus, store_dir, store = _sweep_setup(args)

    if args.status:
        from repro.sweep.dist import corpus_status, format_status

        status = corpus_status(cells, store)
        if args.json:
            print(json.dumps(status.as_dict(), indent=2))
        else:
            for line in format_status(status, corpus, store_dir):
                print(line)
        return 0

    if args.dry_run:
        complete = sum(1 for cell in cells if store.has(cell.key))
        if args.json:
            plan = {
                "corpus": corpus,
                "template": args.template,
                "store": store_dir,
                "total": len(cells),
                "complete": complete,
                "cells": [
                    {
                        "template": cell.template,
                        "index": cell.index,
                        "key": cell.key,
                        "experiment": cell.spec.experiment,
                        "assignment": dict(cell.assignment),
                        "complete": store.has(cell.key),
                    }
                    for cell in cells
                ],
            }
            print(json.dumps(plan, indent=2))
        else:
            print(
                f"# sweep plan {corpus}: {len(cells)} cells "
                f"({complete} complete) -> {store_dir}"
            )
            for cell in cells:
                status = "done" if store.has(cell.key) else "pending"
                print(
                    f"{cell.key[:12]}  {status:>7}  {cell.spec.experiment}  "
                    f"{cell.describe()}"
                )
        return 0

    sweep_options = {}
    if args.lease is not None:
        sweep_options["lease_seconds"] = args.lease
    telemetry_on = bool(args.telemetry or args.trace)
    if telemetry_on:
        telemetry.enable(trace=args.trace)
    try:
        report = run_sweep(
            cells,
            store,
            workers=args.workers,
            batched=not args.sequential,
            resume=args.resume,
            on_cell=lambda cell: print(
                f"# cell {cell.key[:12]} done: {cell.spec.experiment} ({cell.describe()})"
            ),
            **sweep_options,
        )
    finally:
        if telemetry_on:
            telemetry_line = telemetry.summary_line()
            telemetry.disable()
    print(f"# {report.summary()} store={store_dir}")
    if telemetry_on:
        print(f"# {telemetry_line}")
    if report.failed:
        _print_failures(report.failed)
        print(
            f"error: {len(report.failed)} of {report.total} sweep cells failed; "
            "aggregation skipped (fix the cells and re-run with --resume)",
            file=sys.stderr,
        )
        return 1
    if report.deferred:
        print(
            f"# {len(report.deferred)} cells deferred to other live workers; "
            "aggregation skipped (re-run with --resume once they finish, or "
            "check progress with --status)",
            file=sys.stderr,
        )
        return 0
    merged = aggregate_cells(cells, store)
    for result in merged.values():
        print(f"# {result.figure}: {result.description}")
        print(result.table())
    if args.output:
        os.makedirs(args.output, exist_ok=True)
        for experiment, result in merged.items():
            with open(os.path.join(args.output, f"{experiment}.json"), "w") as handle:
                json.dump(result.as_dict(), handle, indent=2)
        summary = {
            "corpus": corpus,
            "store": store_dir,
            "report": {
                "total": report.total,
                "workers": report.workers,
                "executed": report.executed,
                "skipped": report.skipped,
                "failed": [failure.as_dict() for failure in report.failed],
                "deferred": report.deferred,
            },
            "experiments": sorted(merged),
        }
        with open(os.path.join(args.output, "summary.json"), "w") as handle:
            json.dump(summary, handle, indent=2)
        print(f"# aggregated results written to {args.output}")
    return 0


def _print_failures(failures) -> None:
    """Per-cell error lines plus the stored traceback, to stderr."""
    for failure in failures:
        print(f"# cell {failure.key[:12]} FAILED: {failure.error}", file=sys.stderr)
        if failure.traceback:
            for line in failure.traceback.rstrip().splitlines():
                print(f"#   {line}", file=sys.stderr)


def _sweep_worker(args: argparse.Namespace) -> int:
    """The ``sweep-worker`` subcommand: drain a (shared) store's corpus."""
    from repro.sweep.dist import run_worker

    cells, corpus, store_dir, store = _sweep_setup(args)
    print(f"# sweep-worker draining {corpus}: {len(cells)} cells -> {store_dir}")

    def on_event(kind: str, cell, outcome) -> None:
        if kind == "done":
            suffix = " (reclaimed)" if outcome.get("reclaimed") else ""
            print(
                f"# cell {cell.key[:12]} done in {outcome.get('elapsed', 0.0):.2f}s: "
                f"{cell.spec.experiment} ({cell.describe()}){suffix}",
                flush=True,
            )
        elif kind == "failed":
            print(f"# cell {cell.key[:12]} FAILED here", flush=True)
        elif kind == "skipped-failed":
            print(
                f"# cell {cell.key[:12]} skipped: failure record from "
                f"{outcome.get('host', '?')}:{outcome.get('pid', '?')}",
                flush=True,
            )
        elif kind == "waiting":
            print(
                f"# waiting on {outcome.get('pending', '?')} cells claimed by "
                "other workers...",
                flush=True,
            )

    worker_options = {}
    if args.lease is not None:
        worker_options["lease_seconds"] = args.lease
    report = run_worker(
        cells,
        store,
        poll_seconds=args.poll,
        batched=not args.sequential,
        max_cells=args.max_cells,
        retry_failed=args.retry_failed,
        wait_timeout=args.timeout,
        on_event=on_event,
        handle_signals=True,
        **worker_options,
    )
    print(f"# {report.summary()} store={store_dir}")
    if report.interrupted is not None:
        print(
            f"# interrupted by signal {report.interrupted}; live claim "
            "released — another worker can take the cell immediately",
            file=sys.stderr,
        )
        return 128 + report.interrupted
    if report.failed:
        _print_failures(report.failed)
    for key in report.skipped_failed:
        print(
            f"# cell {key[:12]} failed on another worker (see claims/{key}.failed)",
            file=sys.stderr,
        )
    if report.timed_out:
        print(
            f"error: timed out with {len(report.pending)} cells still pending "
            "(other workers hold live leases); re-run to keep waiting",
            file=sys.stderr,
        )
        return 1
    if report.failed_total():
        print(
            f"error: {report.failed_total()} of {report.total} sweep cells failed; "
            "fix the cells and re-run (failure records carry the tracebacks)",
            file=sys.stderr,
        )
        return 1
    return 0


def _supervised_serve(args: argparse.Namespace) -> int:
    """``serve --supervise``: keep a child server alive with backoff."""
    from repro.serve.supervise import Supervisor, serve_command

    supervisor = Supervisor(
        serve_command(args._argv),
        backoff_base=args.restart_backoff,
        backoff_cap=args.restart_cap,
        max_restarts=args.max_restarts,
    )
    supervisor.install_signal_handlers()
    report = supervisor.run()
    print(f"# {report.summary()}")
    return 0 if not report.gave_up else 1


def _serve(args: argparse.Namespace) -> int:
    """The ``serve`` subcommand: warm up (or recover), bind, serve."""
    from repro.serve.server import run_server
    from repro.serve.service import OverlayService

    if args.supervise:
        return _supervised_serve(args)
    if (args.port is None) == (args.socket is None):
        raise ValidationError("pass exactly one of --port or --socket")
    spec = _load_spec(args.spec)
    # The serve process always runs with a live metrics registry, so the
    # 'metrics' op and --metrics-port have something to report; tracing
    # stays off (serving is open-ended — there is no file to seal).
    telemetry.enable()
    crash_safety = dict(
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        keep_checkpoints=args.keep_checkpoints,
    )
    if args.log and os.path.exists(args.log) and os.path.getsize(args.log) > 0:
        # A populated log means a predecessor served here: recover its
        # state (checkpoint + bounded suffix replay) instead of starting
        # over — and skip the warmup, those epochs already happened.
        service = OverlayService.recover(
            args.log, batched=not args.sequential, **crash_safety
        )
        print(service.last_recovery.summary(), flush=True)
    else:
        service = OverlayService(
            spec, batched=not args.sequential, log_path=args.log, **crash_safety
        )
        for _ in range(max(0, args.warmup_epochs)):
            service.tick()
    print(
        f"# serving {spec.experiment} (n={spec.n}, "
        f"{len(service.session.labels)} deployments, "
        f"{service.session.epochs_completed} epochs committed)"
    )
    server_options = {}
    if args.queue_limit is not None:
        server_options["queue_limit"] = args.queue_limit
    run_server(
        service,
        host=args.host,
        port=args.port,
        socket_path=args.socket,
        cadence=args.cadence,
        metrics_port=args.metrics_port,
        announce=lambda address: print(f"# serve listening on {address}", flush=True),
        announce_metrics=lambda address: print(
            f"# serve metrics on {address}", flush=True
        ),
        handle_sigterm=True,
        **server_options,
    )
    print(f"# serve shut down after {service.counters['epochs']} epochs")
    telemetry.disable()
    return 0


def _chaos(args: argparse.Namespace) -> int:
    """The ``chaos`` subcommand: run the harness, print the verdict."""
    from repro.serve.chaos import ChaosScenario, run_chaos

    scenario = ChaosScenario.load(args.scenario)
    workdir = args.workdir
    if workdir is None:
        stem = os.path.splitext(os.path.basename(args.scenario))[0]
        workdir = f"{stem}-workdir"
    print(
        f"# chaos: {scenario.epochs} epochs, {scenario.kills} SIGKILLs, "
        f"checkpoint every {scenario.checkpoint_every}; artifacts in {workdir}"
    )
    report = run_chaos(scenario, workdir, batched=not args.sequential)
    for line in report.recovery_lines:
        print(f"# {line}")
    print(report.summary())
    if not report.ok:
        print(
            "error: the chaos run lost acknowledged state or diverged from "
            f"the uninterrupted reference (artifacts in {workdir})",
            file=sys.stderr,
        )
        return 1
    return 0


def _serve_load(args: argparse.Namespace) -> int:
    """The ``serve-load`` subcommand: drive a server, print the summary."""
    from repro.serve.load import format_summary, run_load, write_report

    if (args.port is None) == (args.socket is None):
        raise ValidationError("pass exactly one of --port or --socket")
    mutate = None
    if args.mutate is not None:
        try:
            mutate = json.loads(args.mutate)
        except json.JSONDecodeError as error:
            raise ValidationError(f"--mutate is not valid JSON: {error}")
    report = run_load(
        host=args.host,
        port=args.port,
        socket_path=args.socket,
        model=args.model,
        lookups=args.lookups,
        batch_size=args.batch,
        seed=args.seed,
        engine=args.engine,
        mutate=mutate,
        shutdown=args.shutdown,
    )
    print(format_summary(report))
    if args.output:
        write_report(report, args.output)
        print(f"# load report written to {args.output}")
    return 0


def _trace_summarize(args: argparse.Namespace) -> int:
    """The ``trace summarize`` subcommand: per-phase table or JSON."""
    from repro.telemetry.summarize import format_summary, read_trace, summarize

    trace = read_trace(args.trace)
    summary = summarize(trace)
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        print(format_summary(summary))
    if args.check_coverage is not None:
        coverage = float(summary["coverage"])
        if coverage < args.check_coverage:
            print(
                f"error: trace attributes {coverage:.1%} of wall-clock to "
                f"named spans, below the required {args.check_coverage:.1%}",
                file=sys.stderr,
            )
            return 1
    return 0


def _serve_replay(args: argparse.Namespace) -> int:
    """The ``serve-replay`` subcommand: digest-check a mutation log."""
    from repro.serve.replay import replay_log

    result = replay_log(
        args.log,
        batched=False if args.sequential else None,
        checkpoint_dir=args.checkpoints,
    )
    print(result.summary())
    if not result.ok:
        for mismatch in result.mismatches:
            print(
                f"# epoch {mismatch['epoch']}: served {mismatch['served']} "
                f"!= replayed {mismatch['replayed']}",
                file=sys.stderr,
            )
        return 1
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    # The supervisor re-execs this invocation minus its own flags.
    args._argv = list(argv) if argv is not None else sys.argv[1:]

    try:
        if args.command == "serve":
            return _serve(args)

        if args.command == "chaos":
            return _chaos(args)

        if args.command == "serve-load":
            return _serve_load(args)

        if args.command == "serve-replay":
            return _serve_replay(args)

        if args.command == "trace":
            return _trace_summarize(args)

        if args.command == "list":
            names = scenario_names()
            if args.json:
                entries = []
                for name in names:
                    definition = resolve(name)
                    entries.append(
                        {
                            "name": name,
                            "help": definition.help,
                            "default_spec": definition.default_spec().to_dict(),
                            "smoke_args": list(definition.smoke_args),
                        }
                    )
                print(json.dumps(entries, indent=2))
                return 0
            width = max(len(name) for name in names)
            for name in names:
                print(f"{name:<{width}}  {resolve(name).help}")
            return 0

        if args.command == "sweep":
            return _sweep(args)

        if args.command == "sweep-worker":
            return _sweep_worker(args)

        if args.command == "spec":
            spec = _spec_from_args(args)
            text = spec.to_json()
            if args.output:
                with open(args.output, "w") as handle:
                    handle.write(text + "\n")
                print(f"# scenario spec written to {args.output}")
            else:
                print(text)
            return 0

        # run
        if getattr(args, "spec", None):
            if args.experiment is not None:
                raise ValidationError("--spec replaces the experiment name; pass only one")
            spec = _apply_overrides(_load_spec(args.spec), args)
        else:
            spec = _spec_from_args(args)
        trace_to = getattr(args, "trace", None)
        if trace_to is not None:
            telemetry.enable(trace=trace_to)
        telemetry_line = None
        try:
            session = SimulationSession(
                spec, batched=not getattr(args, "sequential", False)
            )
            with telemetry.span("run", experiment=spec.experiment):
                result = session.run()
        finally:
            if trace_to is not None:
                telemetry_line = telemetry.summary_line()
                telemetry.disable()
    except ValidationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    print(f"# {result.figure}: {result.description}")
    print(result.table())
    if telemetry_line is not None:
        print(f"# {telemetry_line}")
    if getattr(args, "verbose", False):
        cache = result.metadata.get("cache")
        if cache is None:
            print("# cache: n/a (no epoch-loop engine batches in this scenario)")
        else:
            line = (
                "# cache: hits={hits:.0f} misses={misses:.0f} repairs={repairs:.0f} "
                "restamps={restamps:.0f} hit_rate={hit_rate:.3f}".format(**cache)
            )
            if "drops" in cache:
                line += " drops={drops:.0f}".format(**cache)
            print(line)
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(result.as_dict(), handle, indent=2)
        print(f"# full result written to {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
