"""Command-line interface: regenerate any of the paper's figures.

Usage::

    python -m repro.cli list
    python -m repro.cli run fig1-delay-ping --n 50 --k 2,3,4,5,6,7,8
    python -m repro.cli run fig2-churn-rate --n 24 --seed 7 --output fig2.json

``run`` executes the corresponding experiment driver, prints the
regenerated series as a tab-separated table (the same rows the paper's
figure plots), and optionally writes the full result as JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, Optional, Sequence

from repro.experiments import (
    fig1_bandwidth,
    fig1_delay_ping,
    fig1_delay_pyxida,
    fig1_node_load,
    fig2_churn_rate_sweep,
    fig2_efficiency_vs_k,
    fig3_epsilon_comparison,
    fig3_rewirings_over_time,
    fig4_many_free_riders,
    fig4_one_free_rider,
    fig5_to_8_sampling,
    fig10_multipath_gain,
    fig11_disjoint_paths,
    overhead_table,
)
from repro.experiments.harness import ExperimentResult
from repro.experiments.preferences_exp import preference_skew_ablation


def _parse_int_list(text: str) -> tuple:
    return tuple(int(part) for part in text.split(",") if part.strip())


def _parse_float_list(text: str) -> tuple:
    return tuple(float(part) for part in text.split(",") if part.strip())


#: Registry of experiment names to (driver, description, accepted options).
EXPERIMENTS: Dict[str, Dict[str, object]] = {
    "fig1-delay-ping": {
        "driver": lambda args: fig1_delay_ping(
            n=args.n, k_values=args.k, seed=args.seed, br_rounds=args.br_rounds
        ),
        "help": "Fig. 1 top-left: delay via ping, cost/BR vs k (with full mesh)",
    },
    "fig1-delay-pyxida": {
        "driver": lambda args: fig1_delay_pyxida(
            n=args.n, k_values=args.k, seed=args.seed, br_rounds=args.br_rounds
        ),
        "help": "Fig. 1 top-right: delay via virtual coordinates",
    },
    "fig1-node-load": {
        "driver": lambda args: fig1_node_load(
            n=args.n, k_values=args.k, seed=args.seed, br_rounds=args.br_rounds
        ),
        "help": "Fig. 1 bottom-left: node CPU load",
    },
    "fig1-bandwidth": {
        "driver": lambda args: fig1_bandwidth(
            n=args.n, k_values=args.k, seed=args.seed, br_rounds=args.br_rounds
        ),
        "help": "Fig. 1 bottom-right: available bandwidth",
    },
    "fig2-efficiency-vs-k": {
        "driver": lambda args: fig2_efficiency_vs_k(
            n=args.n, k_values=args.k, seed=args.seed, epochs=args.epochs
        ),
        "help": "Fig. 2 left: efficiency under trace-driven churn vs k",
    },
    "fig2-churn-rate": {
        "driver": lambda args: fig2_churn_rate_sweep(
            n=args.n, churn_rates=args.churn_rates, k=args.k[0], seed=args.seed, epochs=args.epochs
        ),
        "help": "Fig. 2 right: efficiency vs churn rate at fixed k",
    },
    "fig3-rewirings": {
        "driver": lambda args: fig3_rewirings_over_time(
            n=args.n, k_values=args.k, epochs=args.epochs, seed=args.seed
        ),
        "help": "Fig. 3 left: re-wirings per epoch over time",
    },
    "fig3-epsilon": {
        "driver": lambda args: fig3_epsilon_comparison(
            n=args.n, k_values=args.k, epochs=args.epochs, seed=args.seed
        ),
        "help": "Fig. 3 center/right: BR vs BR(eps=0.1)",
    },
    "fig4-one-freerider": {
        "driver": lambda args: fig4_one_free_rider(
            n=args.n, k_values=args.k, seed=args.seed, br_rounds=args.br_rounds
        ),
        "help": "Fig. 4 left: one free rider",
    },
    "fig4-many-freeriders": {
        "driver": lambda args: fig4_many_free_riders(
            n=args.n, k=args.k[0], seed=args.seed, br_rounds=args.br_rounds
        ),
        "help": "Fig. 4 right: many free riders at k=2",
    },
    "fig5-sampling-br": {
        "driver": lambda args: fig5_to_8_sampling(
            "best-response", n=args.n, k=args.k[0], seed=args.seed, trials=args.trials
        ),
        "help": "Fig. 5: newcomer cost vs sample size on a BR graph",
    },
    "fig6-sampling-random": {
        "driver": lambda args: fig5_to_8_sampling(
            "k-random", n=args.n, k=args.k[0], seed=args.seed, trials=args.trials
        ),
        "help": "Fig. 6: sampling on a k-Random graph",
    },
    "fig7-sampling-regular": {
        "driver": lambda args: fig5_to_8_sampling(
            "k-regular", n=args.n, k=args.k[0], seed=args.seed, trials=args.trials
        ),
        "help": "Fig. 7: sampling on a k-Regular graph",
    },
    "fig8-sampling-closest": {
        "driver": lambda args: fig5_to_8_sampling(
            "k-closest", n=args.n, k=args.k[0], seed=args.seed, trials=args.trials
        ),
        "help": "Fig. 8: sampling on a k-Closest graph",
    },
    "fig10-multipath": {
        "driver": lambda args: fig10_multipath_gain(
            n=args.n, k_values=args.k, seed=args.seed, br_rounds=args.br_rounds
        ),
        "help": "Fig. 10: multipath available-bandwidth gain vs k",
    },
    "fig11-disjoint": {
        "driver": lambda args: fig11_disjoint_paths(
            n=args.n, k_values=args.k, seed=args.seed, br_rounds=args.br_rounds
        ),
        "help": "Fig. 11: disjoint overlay paths vs k",
    },
    "overheads": {
        "driver": lambda args: overhead_table(n=args.n, k_values=args.k),
        "help": "Section 4.3: measurement and link-state overheads",
    },
    "ablation-preferences": {
        "driver": lambda args: preference_skew_ablation(
            n=args.n, k=args.k[0], seed=args.seed, br_rounds=args.br_rounds
        ),
        "help": "Ablation: BR's advantage under skewed routing preferences",
    },
}


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate figures from 'EGOIST: Overlay Routing using Selfish Neighbor Selection'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the available experiments")

    run = sub.add_parser("run", help="run one experiment and print its series")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS), help="experiment to run")
    run.add_argument("--n", type=int, default=50, help="number of overlay nodes")
    run.add_argument(
        "--k",
        type=_parse_int_list,
        default=(2, 3, 4, 5, 6, 7, 8),
        help="comma-separated neighbour budgets (single value for fixed-k experiments)",
    )
    run.add_argument("--seed", type=int, default=2008, help="random seed")
    run.add_argument("--epochs", type=int, default=10, help="engine epochs (time-driven experiments)")
    run.add_argument("--trials", type=int, default=3, help="trials per point (sampling experiments)")
    run.add_argument("--br-rounds", type=int, default=3, help="best-response dynamics rounds")
    run.add_argument(
        "--churn-rates",
        type=_parse_float_list,
        default=(1e-4, 1e-3, 1e-2, 1e-1),
        help="comma-separated churn rates (fig2-churn-rate)",
    )
    run.add_argument("--output", type=str, default=None, help="write the result as JSON to this path")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name in sorted(EXPERIMENTS):
            print(f"{name:<{width}}  {EXPERIMENTS[name]['help']}")
        return 0

    driver = EXPERIMENTS[args.experiment]["driver"]
    result: ExperimentResult = driver(args)
    print(f"# {result.figure}: {result.description}")
    print(result.table())
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(result.as_dict(), handle, indent=2)
        print(f"# full result written to {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
