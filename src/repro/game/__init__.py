"""Game-theoretic analysis of the Selfish Neighbor Selection (SNS) game.

The SNS game [Laoutaris et al. 2007] underlies EGOIST: nodes are players,
wirings are strategies, and the cost functions are the preference-weighted
routing costs.  This subpackage provides the machinery the paper's
background section relies on: best-response dynamics, (approximate) Nash
equilibrium detection, social cost, and price-of-anarchy style ratios
against the socially optimal wiring.
"""

from repro.game.sns_game import (
    BestResponseDynamicsResult,
    SNSGame,
    best_response_dynamics,
    is_nash_equilibrium,
)
from repro.game.social_cost import (
    price_of_anarchy_bound,
    social_cost,
    social_optimum_greedy,
)

__all__ = [
    "BestResponseDynamicsResult",
    "SNSGame",
    "best_response_dynamics",
    "is_nash_equilibrium",
    "price_of_anarchy_bound",
    "social_cost",
    "social_optimum_greedy",
]
