"""The Selfish Neighbor Selection game: dynamics and equilibria.

Definitions follow Section 2.1 of the paper: a game instance is a node
set, a link-weight (distance) function, per-node neighbour budgets ``k``,
and preference weights.  Strategies are wirings; a global wiring is a
(pure) Nash equilibrium when no node can lower its cost by unilaterally
re-wiring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.best_response import WiringEvaluator, best_response
from repro.core.cost import Metric, uniform_preferences
from repro.core.policies import KRandomPolicy
from repro.core.wiring import GlobalWiring, Wiring
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import ValidationError


class SNSGame:
    """An instance of the SNS game.

    Parameters
    ----------
    metric:
        The link-weight function and objective (delay, load, bandwidth).
    k:
        Per-node neighbour budget (uniform, as in the paper).
    preferences:
        Preference matrix; defaults to uniform.
    """

    def __init__(
        self,
        metric: Metric,
        k: int,
        *,
        preferences: Optional[np.ndarray] = None,
    ):
        if k < 1:
            raise ValidationError("k must be >= 1")
        if k > metric.size - 1:
            raise ValidationError("k cannot exceed n - 1")
        self.metric = metric
        self.k = int(k)
        self.n = metric.size
        self.preferences = (
            preferences if preferences is not None else uniform_preferences(self.n)
        )

    # ------------------------------------------------------------------ #
    # Per-player quantities
    # ------------------------------------------------------------------ #
    def player_cost(self, wiring: GlobalWiring, node: int) -> float:
        """Cost of ``node`` under the global wiring."""
        graph = wiring.to_graph()
        return self.metric.node_cost(node, graph, self.preferences)

    def player_best_response(
        self,
        wiring: GlobalWiring,
        node: int,
        *,
        rng: SeedLike = None,
    ):
        """Best response of ``node`` to everyone else's wiring."""
        residual = wiring.residual_graph(node)
        evaluator = WiringEvaluator(
            node=node,
            metric=self.metric,
            residual_graph=residual,
            preferences=self.preferences,
        )
        return evaluator, best_response(evaluator, self.k, rng=rng)

    def random_wiring(self, rng: SeedLike = None) -> GlobalWiring:
        """A uniformly random feasible global wiring (initial condition)."""
        rng = as_generator(rng)
        wiring = GlobalWiring(self.n)
        policy = KRandomPolicy()
        for node in range(self.n):
            chosen = policy.select(
                node, self.k, self.metric, wiring.to_graph(), rng=rng
            )
            weights = {v: self.metric.link_weight(node, v) for v in chosen}
            wiring.set_wiring(Wiring.of(node, chosen), weights)
        return wiring


def is_nash_equilibrium(
    game: SNSGame,
    wiring: GlobalWiring,
    *,
    tolerance: float = 1e-9,
    rng: SeedLike = None,
) -> bool:
    """True if no player can improve its cost by more than ``tolerance``.

    The check uses the same best-response machinery as the system itself
    (exact for small instances, local search otherwise), so for large
    instances it certifies an *approximate* equilibrium.
    """
    for node in range(game.n):
        evaluator, result = game.player_best_response(wiring, node, rng=rng)
        current = wiring.wiring_of(node)
        current_cost = evaluator.evaluate(
            current.neighbors if current is not None else ()
        )
        if game.metric.maximize:
            if result.cost > current_cost * (1.0 + tolerance) + tolerance:
                return False
        else:
            if result.cost < current_cost * (1.0 - tolerance) - tolerance:
                return False
    return True


@dataclass
class BestResponseDynamicsResult:
    """Outcome of running best-response dynamics."""

    wiring: GlobalWiring
    rounds: int
    converged: bool
    rewirings_per_round: List[int] = field(default_factory=list)
    social_costs: List[float] = field(default_factory=list)

    @property
    def total_rewirings(self) -> int:
        """Total unilateral re-wirings performed during the dynamics."""
        return int(sum(self.rewirings_per_round))


def best_response_dynamics(
    game: SNSGame,
    *,
    initial: Optional[GlobalWiring] = None,
    max_rounds: int = 20,
    rng: SeedLike = None,
) -> BestResponseDynamicsResult:
    """Run round-robin best-response dynamics until convergence.

    Each round every player (in random order) adopts its best response to
    the current wiring of the others.  The dynamics stop when a full round
    passes with no re-wiring — a pure Nash equilibrium of the (approximate)
    best-response correspondence — or after ``max_rounds``.
    """
    rng = as_generator(rng)
    wiring = initial.copy() if initial is not None else game.random_wiring(rng)
    rewirings_per_round: List[int] = []
    social_costs: List[float] = []
    converged = False
    order = list(range(game.n))
    rounds_done = 0
    for _round in range(int(max_rounds)):
        rounds_done += 1
        rng.shuffle(order)
        changed = 0
        for node in order:
            evaluator, result = game.player_best_response(wiring, node, rng=rng)
            current = wiring.wiring_of(node)
            current_set = set(current.neighbors) if current is not None else set()
            current_cost = evaluator.evaluate(current_set)
            if game.metric.better(result.cost, current_cost) and set(result.neighbors) != current_set:
                weights = {
                    v: game.metric.link_weight(node, v) for v in result.neighbors
                }
                wiring.set_wiring(result.as_wiring(), weights)
                changed += 1
        rewirings_per_round.append(changed)
        social_costs.append(game.metric.social_cost(wiring.to_graph(), game.preferences))
        if changed == 0:
            converged = True
            break
    return BestResponseDynamicsResult(
        wiring=wiring,
        rounds=rounds_done,
        converged=converged,
        rewirings_per_round=rewirings_per_round,
        social_costs=social_costs,
    )
