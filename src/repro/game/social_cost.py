"""Social cost and comparisons against socially optimal wirings.

The SNS literature cited by the paper shows that, for uniform preferences
and link weights, pure Nash equilibria exist and their social cost is
within a constant factor of the social optimum.  These helpers let the
library's tests and ablation benchmarks quantify that gap empirically:
the social cost of a wiring, a greedy approximation of the social optimum
(exhaustive search is exponential), and the resulting empirical
price-of-anarchy style ratio.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.best_response import WiringEvaluator, best_response
from repro.core.cost import Metric, uniform_preferences
from repro.core.wiring import GlobalWiring, Wiring
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import ValidationError


def social_cost(
    metric: Metric,
    wiring: GlobalWiring,
    preferences: Optional[np.ndarray] = None,
) -> float:
    """Sum of all players' costs under ``wiring``."""
    return metric.social_cost(wiring.to_graph(), preferences)


def social_optimum_greedy(
    metric: Metric,
    k: int,
    *,
    preferences: Optional[np.ndarray] = None,
    rounds: int = 3,
    rng: SeedLike = None,
) -> GlobalWiring:
    """Greedy approximation of the socially optimal degree-k wiring.

    Nodes are visited round-robin; each visit the node adopts the wiring
    that minimises the *social* cost (not its own), holding everyone else
    fixed.  This is a coordinate-descent heuristic — adequate as a
    baseline for price-of-anarchy style comparisons, not an exact optimum.
    """
    if k < 1:
        raise ValidationError("k must be >= 1")
    rng = as_generator(rng)
    n = metric.size
    prefs = preferences if preferences is not None else uniform_preferences(n)

    # Start from everyone best-responding selfishly (a good initial point).
    wiring = GlobalWiring(n)
    for node in range(n):
        residual = wiring.to_graph()
        evaluator = WiringEvaluator(
            node=node, metric=metric, residual_graph=residual, preferences=prefs
        )
        result = best_response(evaluator, k, rng=rng)
        weights = {v: metric.link_weight(node, v) for v in result.neighbors}
        wiring.set_wiring(result.as_wiring(), weights)

    for _ in range(int(rounds)):
        improved = False
        for node in range(n):
            current = wiring.wiring_of(node)
            current_social = social_cost(metric, wiring, prefs)
            best_social = current_social
            best_neighbors = set(current.neighbors)
            # Try single-swap perturbations of this node's wiring and keep
            # the one that lowers (or raises, for bandwidth) social cost.
            others = [j for j in range(n) if j != node]
            for out_neighbor in list(current.neighbors):
                for in_neighbor in others:
                    if in_neighbor in current.neighbors:
                        continue
                    trial_neighbors = set(current.neighbors)
                    trial_neighbors.discard(out_neighbor)
                    trial_neighbors.add(in_neighbor)
                    trial = wiring.copy()
                    weights = {
                        v: metric.link_weight(node, v) for v in trial_neighbors
                    }
                    trial.set_wiring(Wiring.of(node, trial_neighbors), weights)
                    value = social_cost(metric, trial, prefs)
                    if metric.better(value, best_social):
                        best_social = value
                        best_neighbors = trial_neighbors
            if best_neighbors != set(current.neighbors):
                weights = {v: metric.link_weight(node, v) for v in best_neighbors}
                wiring.set_wiring(Wiring.of(node, best_neighbors), weights)
                improved = True
        if not improved:
            break
    return wiring


def price_of_anarchy_bound(
    metric: Metric,
    equilibrium: GlobalWiring,
    optimum: GlobalWiring,
    preferences: Optional[np.ndarray] = None,
) -> float:
    """Empirical social-cost ratio equilibrium / optimum.

    For minimised metrics a value of 1.0 means the equilibrium is socially
    optimal; larger values quantify the inefficiency of selfish wiring.
    For maximised metrics the reciprocal convention is used so that >= 1
    still means "equilibrium no better than optimum".
    """
    eq = social_cost(metric, equilibrium, preferences)
    opt = social_cost(metric, optimum, preferences)
    if metric.maximize:
        if eq == 0:
            return float("inf")
        return opt / eq
    if opt == 0:
        return float("inf") if eq > 0 else 1.0
    return eq / opt
