"""Real-time traffic over disjoint overlay paths (Section 6.2).

Delay- and loss-sensitive applications send additional copies of their
stream over multiple disjoint overlay paths so that at least one copy of
every packet beats the playout deadline.  The paper's initial result
(Fig. 11) is that the number of disjoint paths between a source and target
grows roughly linearly with the number of parallel connections k.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.wiring import GlobalWiring
from repro.routing.disjoint import count_disjoint_paths, disjoint_paths
from repro.routing.graph import OverlayGraph
from repro.routing.shortest_path import path_cost
from repro.util.validation import ValidationError, check_index


@dataclass
class StreamPlan:
    """A redundancy plan for one real-time stream."""

    source: int
    target: int
    paths: List[List[int]] = field(default_factory=list)
    path_delays_ms: List[float] = field(default_factory=list)

    @property
    def redundancy(self) -> int:
        """Number of disjoint copies the stream is sent over."""
        return len(self.paths)

    @property
    def best_delay_ms(self) -> float:
        """Delay of the fastest disjoint path (what a lucky packet sees)."""
        return min(self.path_delays_ms) if self.path_delays_ms else float("inf")

    def loss_survival_probability(self, per_path_loss: float) -> float:
        """Probability that at least one copy survives independent path loss."""
        if not 0.0 <= per_path_loss <= 1.0:
            raise ValidationError("per_path_loss must be in [0, 1]")
        if not self.paths:
            return 0.0
        return 1.0 - per_path_loss ** len(self.paths)


class RealTimeRedirectionApp:
    """Plan redundant real-time delivery over disjoint overlay paths."""

    def __init__(self, overlay: GlobalWiring):
        self.overlay = overlay
        self._graph = overlay.to_graph()

    @property
    def graph(self) -> OverlayGraph:
        """The overlay graph the application routes over."""
        return self._graph

    def disjoint_path_count(
        self, source: int, target: int, *, vertex_disjoint: bool = False
    ) -> int:
        """Number of disjoint overlay paths between ``source`` and ``target``."""
        return count_disjoint_paths(
            self._graph, source, target, vertex_disjoint=vertex_disjoint
        )

    def plan(self, source: int, target: int, *, copies: Optional[int] = None) -> StreamPlan:
        """Build a redundancy plan using up to ``copies`` disjoint paths."""
        check_index(source, self.overlay.n, "source")
        check_index(target, self.overlay.n, "target")
        if source == target:
            raise ValidationError("source and target must differ")
        paths = disjoint_paths(self._graph, source, target)
        # Prefer low-delay paths first.
        paths.sort(key=lambda p: path_cost(self._graph, p))
        if copies is not None:
            paths = paths[: int(copies)]
        delays = [path_cost(self._graph, p) for p in paths]
        return StreamPlan(
            source=source, target=target, paths=paths, path_delays_ms=delays
        )

    def mean_disjoint_paths(
        self, pairs: Sequence[Tuple[int, int]]
    ) -> float:
        """Mean number of disjoint paths over the given source-target pairs."""
        counts = [
            self.disjoint_path_count(source, target) for source, target in pairs
        ]
        return float(np.mean(counts)) if counts else 0.0


def disjoint_path_count(
    overlay: GlobalWiring,
    *,
    pairs: Optional[Sequence[Tuple[int, int]]] = None,
    rng=None,
    max_pairs: int = 200,
) -> Dict[str, float]:
    """Fig. 11 quantity: mean number of disjoint paths between node pairs."""
    from repro.util.rng import as_generator

    app = RealTimeRedirectionApp(overlay)
    n = overlay.n
    if pairs is None:
        rng = as_generator(rng)
        all_pairs = [(i, j) for i in range(n) for j in range(n) if i != j]
        if len(all_pairs) > max_pairs:
            idx = rng.choice(len(all_pairs), size=max_pairs, replace=False)
            pairs = [all_pairs[i] for i in idx]
        else:
            pairs = all_pairs
    return {
        "mean_disjoint_paths": app.mean_disjoint_paths(pairs),
        "pairs_evaluated": float(len(pairs)),
    }


def stream_lookup_pairs(
    n: int,
    *,
    streams: int,
    rng=None,
    copies: int = 3,
) -> List[Tuple[int, int]]:
    """The real-time traffic model for the serve workload generator.

    Each live stream between a uniformly chosen endpoint pair probes the
    overlay once per redundant copy it plans to send (``copies`` disjoint
    paths, Section 6.2's redundancy discipline) and once in the reverse
    direction for the control/feedback channel.  Returns the flat
    ``(src, dst)`` lookup list for ``lookup_batch``.
    """
    from repro.util.rng import as_generator

    if n < 2:
        raise ValidationError("the traffic model needs at least two nodes")
    if copies < 1:
        raise ValidationError("copies must be at least 1")
    rng = as_generator(rng)
    pairs: List[Tuple[int, int]] = []
    for _ in range(int(streams)):
        source = int(rng.integers(n))
        target = int(rng.integers(n - 1))
        if target >= source:
            target += 1
        pairs.extend([(source, target)] * int(copies))
        pairs.append((target, source))
    return pairs
