"""Multipath file transfer via first-hop EGOIST neighbours (Section 6.1).

A source ``v_i`` opens up to ``k`` parallel sessions to a target ``v_j``,
each redirected through a different first-hop EGOIST neighbour
``v_l in s_i``.  Because distinct neighbours often sit behind distinct
peering points of the (multihomed) source AS, each session enjoys its own
per-session rate cap at the peering point, so the aggregate rate can
exceed what any single IP path — even with parallel connections — could
achieve (Fig. 9).  Fig. 10 reports the resulting available-bandwidth gain
versus the single direct IP path, together with the max-flow style ceiling
when every peer allows redirection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.core.wiring import GlobalWiring
from repro.netsim.autonomous_systems import ASTopology
from repro.netsim.bandwidth import BandwidthModel
from repro.routing.graph import OverlayGraph
from repro.routing.widest_path import widest_path_bandwidths_from
from repro.util.validation import ValidationError, check_index


@dataclass(frozen=True)
class SessionPlan:
    """One parallel session of a multipath transfer."""

    first_hop: int
    rate_mbps: float
    egress_link_id: int


@dataclass
class MultipathPlan:
    """A full multipath transfer plan from a source to a target."""

    source: int
    target: int
    sessions: List[SessionPlan] = field(default_factory=list)
    direct_rate_mbps: float = 0.0
    maxflow_rate_mbps: float = 0.0

    @property
    def aggregate_rate_mbps(self) -> float:
        """Total achieved rate across all parallel sessions."""
        return float(sum(s.rate_mbps for s in self.sessions))

    @property
    def gain(self) -> float:
        """Aggregate rate relative to the single direct-path rate."""
        if self.direct_rate_mbps <= 0:
            return float("inf") if self.aggregate_rate_mbps > 0 else 1.0
        return self.aggregate_rate_mbps / self.direct_rate_mbps

    @property
    def maxflow_gain(self) -> float:
        """Max-flow ceiling relative to the single direct-path rate."""
        if self.direct_rate_mbps <= 0:
            return float("inf") if self.maxflow_rate_mbps > 0 else 1.0
        return self.maxflow_rate_mbps / self.direct_rate_mbps


class MultipathTransferApp:
    """Plan multipath transfers over an EGOIST overlay.

    Parameters
    ----------
    overlay:
        The overlay wiring (links weighted by available bandwidth).
    bandwidth:
        The substrate bandwidth model (ground truth of path capacities).
    as_topology:
        AS membership and peering structure (per-session rate caps).
    """

    def __init__(
        self,
        overlay: GlobalWiring,
        bandwidth: BandwidthModel,
        as_topology: ASTopology,
    ):
        if overlay.n != bandwidth.n or overlay.n != as_topology.n:
            raise ValidationError("overlay, bandwidth, and AS model sizes differ")
        self.overlay = overlay
        self.bandwidth = bandwidth
        self.as_topology = as_topology
        # Each overlay hop is its own IP session between consecutive overlay
        # nodes, so every hop is limited both by the available bandwidth of
        # its IP path and by the per-session rate cap at its source's AS
        # egress.  The capped graph is what redirected traffic rides on.
        self._graph = overlay.to_graph()
        self._capped_graph = OverlayGraph(overlay.n)
        for u, v, w in self._graph.edges():
            capacity = min(
                w,
                self.bandwidth.available(u, v),
                self.as_topology.session_rate_limit(u, v),
            )
            if capacity > 0:
                self._capped_graph.add_edge(u, v, capacity)

    # ------------------------------------------------------------------ #
    # Per-session rate computation
    # ------------------------------------------------------------------ #
    def _session_rate(self, source: int, first_hop: int, target: int) -> float:
        """Achievable rate of one session redirected through ``first_hop``.

        The session rides the direct IP hop ``source -> first_hop``
        (limited by the peering-point session cap and available bandwidth)
        and then the best overlay path ``first_hop -> target`` over the
        capped graph.
        """
        cap = self.as_topology.session_rate_limit(source, first_hop)
        first_leg = min(cap, self.bandwidth.available(source, first_hop))
        if self._capped_graph.has_edge(source, first_hop):
            # Keep the first leg consistent with the capped overlay edge so
            # that the max-flow ceiling is always an upper bound.
            first_leg = min(first_leg, self._capped_graph.weight(source, first_hop))
        if first_hop == target:
            return max(0.0, first_leg)
        onward = widest_path_bandwidths_from(self._capped_graph, first_hop)[target]
        return max(0.0, min(first_leg, float(onward)))

    def _session_egress(self, source: int, first_hop: int, target: int):
        """Peering link of the source AS that this session's traffic exits on.

        If the first hop sits in the source's own AS, the traffic only
        leaves the AS on the onward leg, through the egress the first hop
        uses towards the target.
        """
        if self.as_topology.as_of(source) != self.as_topology.as_of(first_hop):
            return self.as_topology.egress_link(source, first_hop)
        return self.as_topology.egress_link(first_hop, target)

    def direct_rate(self, source: int, target: int) -> float:
        """Rate of a single session on the direct IP path (the baseline)."""
        cap = self.as_topology.session_rate_limit(source, target)
        return max(0.0, min(cap, self.bandwidth.available(source, target)))

    def maxflow_rate(self, source: int, target: int) -> float:
        """Ceiling when all peers allow redirection: max-flow source→target.

        Edges are the overlay links plus the direct IP hop, each capped by
        both its available bandwidth and the per-session limit at the
        source AS egress (for edges leaving the source).
        """
        flow_graph = nx.DiGraph()
        for u, v, w in self._capped_graph.edges():
            flow_graph.add_edge(u, v, capacity=w)
        direct = self.direct_rate(source, target)
        if direct > 0:
            if flow_graph.has_edge(source, target):
                flow_graph[source][target]["capacity"] = max(
                    flow_graph[source][target]["capacity"], direct
                )
            else:
                flow_graph.add_edge(source, target, capacity=direct)
        if source not in flow_graph or target not in flow_graph:
            return direct
        value, _ = nx.maximum_flow(flow_graph, source, target)
        return float(value)

    # ------------------------------------------------------------------ #
    # Planning
    # ------------------------------------------------------------------ #
    def plan(self, source: int, target: int, *, max_sessions: Optional[int] = None) -> MultipathPlan:
        """Build a multipath plan from ``source`` to ``target``.

        One session is opened per first-hop neighbour of the source (up to
        ``max_sessions``), each achieving the rate allowed by its peering
        point and its onward overlay path.
        """
        check_index(source, self.overlay.n, "source")
        check_index(target, self.overlay.n, "target")
        if source == target:
            raise ValidationError("source and target must differ")
        wiring = self.overlay.wiring_of(source)
        neighbors = sorted(wiring.neighbors) if wiring is not None else []
        if max_sessions is not None:
            neighbors = neighbors[: int(max_sessions)]
        sessions = []
        for first_hop in neighbors:
            rate = self._session_rate(source, first_hop, target)
            egress = self._session_egress(source, first_hop, target)
            sessions.append(
                SessionPlan(
                    first_hop=first_hop,
                    rate_mbps=rate,
                    egress_link_id=egress.link_id,
                )
            )
        # Sessions sharing a peering link cannot jointly exceed what that
        # peering point allows: cap each egress link's aggregate at its
        # per-session rate limit ("utilize up to the maximum allowed rate
        # at that peering point").
        capped_sessions: List[SessionPlan] = []
        by_egress: Dict[int, float] = {}
        for session in sorted(sessions, key=lambda s: -s.rate_mbps):
            link_id = session.egress_link_id
            limit = self.as_topology.session_rate_limit(source, target)
            if link_id >= 0:
                links = self.as_topology.peering_links[self.as_topology.as_of(source)]
                limit = links[link_id].session_rate_cap_mbps
            else:
                limit = float("inf")
            used = by_egress.get(link_id, 0.0)
            allowed = max(0.0, min(session.rate_mbps, limit - used))
            by_egress[link_id] = used + allowed
            capped_sessions.append(
                SessionPlan(
                    first_hop=session.first_hop,
                    rate_mbps=allowed,
                    egress_link_id=link_id,
                )
            )
        sessions = capped_sessions
        return MultipathPlan(
            source=source,
            target=target,
            sessions=sessions,
            direct_rate_mbps=self.direct_rate(source, target),
            maxflow_rate_mbps=self.maxflow_rate(source, target),
        )

    def mean_gains(
        self, pairs: Sequence[Tuple[int, int]]
    ) -> Tuple[float, float]:
        """Mean (parallel-connection gain, max-flow gain) over ``pairs``."""
        gains = []
        ceilings = []
        for source, target in pairs:
            plan = self.plan(source, target)
            if np.isfinite(plan.gain):
                gains.append(plan.gain)
            if np.isfinite(plan.maxflow_gain):
                ceilings.append(plan.maxflow_gain)
        mean_gain = float(np.mean(gains)) if gains else float("nan")
        mean_ceiling = float(np.mean(ceilings)) if ceilings else float("nan")
        return mean_gain, mean_ceiling


def available_bandwidth_gain(
    overlay: GlobalWiring,
    bandwidth: BandwidthModel,
    as_topology: ASTopology,
    *,
    pairs: Optional[Sequence[Tuple[int, int]]] = None,
    rng=None,
    max_pairs: int = 200,
) -> Dict[str, float]:
    """Fig. 10 quantities: mean multipath gain and max-flow ceiling.

    Parameters
    ----------
    overlay, bandwidth, as_topology:
        The overlay and substrate models.
    pairs:
        Source-target pairs to evaluate; defaults to a random subset of all
        ordered pairs (bounded by ``max_pairs`` for tractability).
    """
    from repro.util.rng import as_generator

    app = MultipathTransferApp(overlay, bandwidth, as_topology)
    n = overlay.n
    if pairs is None:
        rng = as_generator(rng)
        all_pairs = [(i, j) for i in range(n) for j in range(n) if i != j]
        if len(all_pairs) > max_pairs:
            idx = rng.choice(len(all_pairs), size=max_pairs, replace=False)
            pairs = [all_pairs[i] for i in idx]
        else:
            pairs = all_pairs
    gain, ceiling = app.mean_gains(pairs)
    return {
        "parallel_connection_gain": gain,
        "multipath_redirection_gain": ceiling,
        "pairs_evaluated": float(len(pairs)),
    }


def session_lookup_pairs(
    n: int,
    *,
    sessions: int,
    rng=None,
    max_parallel: int = 4,
    popularity_skew: float = 0.8,
) -> List[Tuple[int, int]]:
    """The multipath traffic model for the serve workload generator.

    Each transfer session picks a source uniformly and a target from a
    popularity-skewed distribution (a few hot content hosts soak up most
    transfers, the shape Section 6.1's workload assumes), then issues one
    route lookup per parallel connection — between 1 and ``max_parallel``
    of them, matching the per-first-hop sessions :meth:`MultipathTransferApp.plan`
    opens.  Returns the flat list of ``(src, dst)`` lookups, so callers
    batch them straight into ``lookup_batch``.
    """
    from repro.util.rng import as_generator

    if n < 2:
        raise ValidationError("the traffic model needs at least two nodes")
    rng = as_generator(rng)
    skew = float(popularity_skew)
    weights = np.arange(1, n + 1, dtype=float) ** -max(0.0, skew)
    weights /= weights.sum()
    popularity = rng.permutation(n)
    pairs: List[Tuple[int, int]] = []
    for _ in range(int(sessions)):
        source = int(rng.integers(n))
        target = int(popularity[rng.choice(n, p=weights)])
        while target == source:
            target = int(popularity[rng.choice(n, p=weights)])
        for _connection in range(int(rng.integers(1, max(1, int(max_parallel)) + 1))):
            pairs.append((source, target))
    return pairs
