"""Applications built on EGOIST's redirection infrastructure (Section 6).

* :mod:`repro.apps.multipath` — multipath file transfer: a source opens up
  to ``k`` parallel sessions through its first-hop EGOIST neighbours to
  escape per-session rate limits at its AS's peering points (Figs. 9, 10).
* :mod:`repro.apps.realtime` — real-time traffic: redundant copies of a
  stream are sent over disjoint overlay paths to beat delay jitter and
  loss (Fig. 11).
"""

from repro.apps.multipath import (
    MultipathPlan,
    MultipathTransferApp,
    available_bandwidth_gain,
)
from repro.apps.realtime import (
    RealTimeRedirectionApp,
    StreamPlan,
    disjoint_path_count,
)

__all__ = [
    "MultipathPlan",
    "MultipathTransferApp",
    "available_bandwidth_gain",
    "RealTimeRedirectionApp",
    "StreamPlan",
    "disjoint_path_count",
]
