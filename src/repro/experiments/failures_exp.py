"""Resilience under injected failures (beyond the paper's churn story).

The paper's only resilience result is Fig. 2's churn panels; this driver
measures how a selfish overlay absorbs the failures production systems
actually see — a link cut mid-run, a correlated node outage, a partition
that later heals, a flapping link under announcement loss.  Every
(policy, k) pair is one engine deployment running the scenario's
:class:`~repro.core.failures.FailureSpec` schedule; the whole grid
advances in lockstep through
:class:`~repro.core.engine_batch.EngineBatch`, exactly like the churn
experiments (``--sequential`` preserves the reference engine
byte-for-byte, failures included).

Per series, the result's ``metadata["resilience"]`` reports:

* ``time_to_reconverge`` — epochs from the first injected event until a
  quiet (zero-re-wiring) epoch (None if the run never settles);
* ``cost_overshoot`` — relative peak of mean cost during repair over the
  pre-event baseline (None when a window is empty);
* ``routes_stuck`` — the per-epoch count of dead ordered routes from
  :class:`~repro.core.engine.EpochRecord`, plus its maximum.

``metadata["announcements_lost"]`` totals the link-state announcements
dropped by the configured message-loss rate across all deployments.
"""

from __future__ import annotations

from typing import Sequence

from repro.churn.metrics import cost_overshoot, time_to_reconverge
from repro.core.engine_batch import EngineSpec
from repro.core.failures import FailureEvent, FailureSpec
from repro.experiments.harness import ExperimentResult
from repro.scenario.registry import register_scenario
from repro.scenario.session import SimulationSession
from repro.scenario.spec import ScenarioSpec, coerce_seed
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import ValidationError

_FAILURE_POLICIES = ("k-closest", "best-response")


def _run_failures(session: SimulationSession) -> ExperimentResult:
    spec = session.spec
    failures = spec.failures
    if failures is None:
        raise ValidationError(
            "failures-resilience needs a failures spec (e.g. a link-down event)"
        )
    rng = as_generator(spec.seed)
    churn = session.churn_schedule(rng)
    preferences = session.preferences(rng)
    event_epoch = min((int(e.epoch) for e in failures.events), default=0)
    result = ExperimentResult(
        figure="failures-resilience",
        description="Mean node cost per epoch under injected failures",
        x_label="epoch",
        y_label="mean cost",
        metadata={"n": spec.n, "event_epoch": event_epoch},
    )
    policies = session.policy_map()
    cells = [
        (k, label, policy)
        for k in spec.k_grid
        for label, policy in policies.items()
    ]

    def build(cell, stream):
        k, label, policy = cell
        return EngineSpec(
            label=f"{label}@k={k}",
            provider=session.make_provider(stream),
            policy=policy,
            k=int(k),
            epoch_length=spec.epoch_length,
            announce_interval=spec.announce_interval,
            churn=churn,
            failures=failures,
            epsilon=spec.epsilon,
            preferences=preferences,
            compute_efficiency=spec.compute_efficiency,
            seed=stream,
        )

    batch = session.engine_batch(session.engine_grid(cells, rng, build))
    histories = batch.run(spec.epochs)
    resilience = {}
    for (k, label, _policy), history in zip(cells, histories):
        series = f"{label}@k={k}"
        for record in history.records:
            result.add_point(series, record.epoch, record.mean_cost)
        overshoot = cost_overshoot(history.records, event_epoch)
        resilience[series] = {
            "time_to_reconverge": time_to_reconverge(history.records, event_epoch),
            # NaN (empty window) becomes None so stored results stay
            # strict JSON.
            "cost_overshoot": float(overshoot) if overshoot == overshoot else None,
            "routes_stuck": [int(r.routes_stuck) for r in history.records],
            "max_routes_stuck": max(
                (int(r.routes_stuck) for r in history.records), default=0
            ),
        }
    result.metadata["resilience"] = resilience
    result.metadata["announcements_lost"] = int(
        sum(engine.protocol.stats.announcements_lost for engine in batch.engines)
    )
    return result


def _failures_spec(
    n: int, k_values: Sequence[int], seed: SeedLike, epochs: int
) -> ScenarioSpec:
    # A single-link cut-and-restore on (0, 1): valid at any n >= 2, so CLI
    # overrides (--n) never invalidate the default schedule.
    return ScenarioSpec(
        experiment="failures-resilience",
        n=int(n),
        k_grid=tuple(int(k) for k in k_values),
        policies=_FAILURE_POLICIES,
        metric="delay-true",
        epochs=int(epochs),
        failures=FailureSpec(
            events=(
                FailureEvent(epoch=2, action="link-down", links=((0, 1),)),
                FailureEvent(epoch=5, action="link-up", links=((0, 1),)),
            ),
            reannounce_delay=1,
        ),
        seed=coerce_seed(seed),
    )


def failures_resilience(
    n: int = 24,
    k_values: Sequence[int] = (3, 5),
    *,
    seed: SeedLike = 2008,
    epochs: int = 10,
    batched: bool = True,
) -> ExperimentResult:
    """Resilience to a mid-run link cut: reconvergence and stuck routes."""
    spec = _failures_spec(n, k_values, seed, epochs)
    return SimulationSession(spec, batched=batched).run()


register_scenario(
    "failures-resilience",
    help="Resilience under injected failures: reconvergence, stuck routes, overshoot",
    default_spec=lambda: _failures_spec(24, (3, 5), 2008, 10),
    runner=_run_failures,
    smoke_args=("--n", "8", "--k", "2", "--epochs", "3"),
)
