"""Shared experiment-result containers and helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np


@dataclass
class Series:
    """One plotted series: an x-axis sweep and the values along it."""

    label: str
    x: List[float] = field(default_factory=list)
    y: List[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        """Append one point."""
        self.x.append(float(x))
        self.y.append(float(y))

    def as_dict(self) -> Dict[str, List[float]]:
        """Plain-dictionary form for serialisation."""
        return {"label": self.label, "x": list(self.x), "y": list(self.y)}


@dataclass
class ExperimentResult:
    """The output of one figure driver: labelled series plus metadata."""

    figure: str
    description: str
    x_label: str
    y_label: str
    series: Dict[str, Series] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)

    def series_for(self, label: str) -> Series:
        """Get (or create) the series with the given label."""
        if label not in self.series:
            self.series[label] = Series(label=label)
        return self.series[label]

    def add_point(self, label: str, x: float, y: float) -> None:
        """Append one point to the labelled series."""
        self.series_for(label).add(x, y)

    def table(self) -> str:
        """A plain-text table of all series (one row per x value).

        A series without a point at some x renders ``-`` there.  Lookups
        go through an explicit per-series ``x -> y`` map (last point wins
        for duplicate x values) rather than ``list.index`` inside a broad
        ``try/except``, which used to swallow ragged-series bugs — a
        series whose ``y`` ran shorter than its ``x`` would have raised
        ``IndexError`` past the ``ValueError`` handler.
        """
        labels = sorted(self.series)
        xs = sorted({x for s in self.series.values() for x in s.x})
        value_maps = {
            label: dict(zip(series.x, series.y))
            for label, series in self.series.items()
        }
        header = [self.x_label] + labels
        lines = ["\t".join(header)]
        for x in xs:
            row = [f"{x:g}"]
            for label in labels:
                y = value_maps[label].get(x)
                row.append("-" if y is None else f"{y:.4g}")
            lines.append("\t".join(row))
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        """Plain-dictionary form for serialisation."""
        return {
            "figure": self.figure,
            "description": self.description,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "series": {k: s.as_dict() for k, s in self.series.items()},
            "metadata": dict(self.metadata),
        }


def normalize_against(
    values: Dict[str, float], reference_label: str
) -> Dict[str, float]:
    """Normalise every value by the reference label's value.

    Used for the paper's "individual cost / BR cost" style axes.  The
    reference entry itself normalises to 1.0.
    """
    reference = values[reference_label]
    if reference == 0:
        return {k: float("inf") if v > 0 else 1.0 for k, v in values.items()}
    return {k: v / reference for k, v in values.items()}


def add_normalized_sweep(
    result: ExperimentResult,
    x: float,
    raw: Dict[str, float],
    reference_label: str,
) -> None:
    """Append one sweep step to ``result``: normalised plus raw series.

    For every label in ``raw`` a point is added to its normalised series
    (value divided by the reference label's, via
    :func:`normalize_against`) and to a ``"<label> (raw)"`` companion
    series carrying the unnormalised value.  The sweep drivers — whether
    batched through a deployment batch or looping sequentially — share
    this so their result layouts stay identical.
    """
    normalized = normalize_against(raw, reference_label)
    for name, value in normalized.items():
        result.add_point(name, x, value)
    for name, value in raw.items():
        result.add_point(f"{name} (raw)", x, value)


def mean_finite(values: Sequence[float]) -> float:
    """Mean of the finite entries of ``values`` (NaN if none)."""
    arr = np.asarray(list(values), dtype=float)
    arr = arr[np.isfinite(arr)]
    return float(arr.mean()) if arr.size else float("nan")
