"""Figure 4: robustness to free riders.

Free riders announce link costs twice as high as the real ones, hoping to
discourage other nodes from selecting them as upstream neighbours.  The
paper shows that both the free riders' and the honest nodes' costs stay
very close to the no-free-rider baseline — EGOIST is robust to this abuse
even without audits.

Left panel: one free rider, cost ratio vs k.  Right panel: many free
riders (up to one third of the population) at k = 2.

Both panels are build-only scenarios: every (k, cheated?) — or
(population, cheated?) — pair is one BR deployment wired from the cheated
announcements, and the whole grid builds in lockstep through
:class:`~repro.core.deployment_batch.DeploymentBatch`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from repro.core.cheating import CheatingModel
from repro.core.cost import DelayMetric
from repro.core.deployment_batch import DeploymentSpec
from repro.core.policies import BestResponsePolicy
from repro.experiments.harness import ExperimentResult, mean_finite
from repro.netsim.planetlab import synthetic_planetlab
from repro.scenario.registry import register_scenario
from repro.scenario.session import SimulationSession
from repro.scenario.spec import CheatingSpec, ScenarioSpec, coerce_seed
from repro.util.rng import SeedLike, as_generator

DEFAULT_K_VALUES = (2, 3, 4, 5, 6, 7, 8)
DEFAULT_FREE_RIDER_COUNTS = (0, 2, 4, 6, 8, 10, 12, 14, 16)


def _announced_for(truth: DelayMetric, riders: Set[int], inflation: float):
    """The announced metric under ``riders``' inflated announcements."""
    if not riders:
        return truth
    return CheatingModel(truth, riders, inflation).announced_metric()


def _node_costs_grid(
    session: SimulationSession,
    truth: DelayMetric,
    rider_sets: Sequence[Set[int]],
    k_of: Sequence[int],
    inflation: float,
    rng,
) -> List[Dict[int, float]]:
    """True per-node costs of one BR deployment per (riders, k) cell."""
    spec = session.spec

    def build(cell):
        riders, k = cell
        return DeploymentSpec(
            label=f"riders={len(riders)}@k={k}",
            policy=BestResponsePolicy(),
            k=int(k),
            announced=_announced_for(truth, riders, inflation),
            truth=truth,
            br_rounds=spec.br_rounds,
        )

    deployment_specs = session.deployment_grid(list(zip(rider_sets, k_of)), rng, build)
    wirings = session.build_deployments(deployment_specs)
    return [truth.all_node_costs(wiring.to_graph()) for wiring in wirings]


def _run_fig4_one(session: SimulationSession) -> ExperimentResult:
    spec = session.spec
    cheating = spec.cheating or CheatingSpec(free_riders=(0,))
    free_rider = int(cheating.free_riders[0]) if cheating.free_riders else 0
    inflation = cheating.inflation
    rng = as_generator(spec.seed)
    space, _nodes = synthetic_planetlab(spec.n, seed=rng)
    truth = DelayMetric(space.matrix)
    result = ExperimentResult(
        figure="fig4-left",
        description="Individual cost with one free rider / cost without, vs k",
        x_label="k",
        y_label="individual cost / cost without free rider",
        metadata={"n": spec.n, "inflation": inflation, "free_rider": free_rider},
    )
    rider_sets: List[Set[int]] = []
    k_of: List[int] = []
    for k in spec.k_grid:
        rider_sets.extend([set(), {free_rider}])
        k_of.extend([int(k), int(k)])
    costs = _node_costs_grid(session, truth, rider_sets, k_of, inflation, rng)
    for index, k in enumerate(spec.k_grid):
        baseline = costs[2 * index]
        cheated = costs[2 * index + 1]
        baseline_rider = baseline[free_rider]
        baseline_others = mean_finite(
            [v for node, v in baseline.items() if node != free_rider]
        )
        rider_ratio = cheated[free_rider] / baseline_rider if baseline_rider else 1.0
        others_ratio = (
            mean_finite([v for node, v in cheated.items() if node != free_rider])
            / baseline_others
            if baseline_others
            else 1.0
        )
        result.add_point("free rider", k, rider_ratio)
        result.add_point("non free riders", k, others_ratio)
    return result


def _run_fig4_many(session: SimulationSession) -> ExperimentResult:
    spec = session.spec
    inflation = spec.cheating.inflation if spec.cheating else 2.0
    k = int(spec.param("k", spec.k_grid[0]))
    counts = [int(c) for c in spec.param("free_rider_counts", DEFAULT_FREE_RIDER_COUNTS)]
    rng = as_generator(spec.seed)
    space, _nodes = synthetic_planetlab(spec.n, seed=rng)
    truth = DelayMetric(space.matrix)
    result = ExperimentResult(
        figure="fig4-right",
        description=f"Individual cost with many free riders / cost without, k={k}",
        x_label="population of free riders",
        y_label="individual cost / cost without free riders",
        metadata={"n": spec.n, "k": k, "inflation": inflation},
    )
    rider_sets: List[Set[int]] = [set()] + [set(range(count)) for count in counts]
    k_of = [k] * len(rider_sets)
    costs = _node_costs_grid(session, truth, rider_sets, k_of, inflation, rng)
    baseline = costs[0]
    for count, cheated in zip(counts, costs[1:]):
        riders = set(range(count))
        if riders:
            rider_baseline = mean_finite([baseline[r] for r in riders])
            rider_mean = mean_finite([cheated[r] for r in riders])
            rider_ratio = rider_mean / rider_baseline if rider_baseline else 1.0
        else:
            rider_ratio = 1.0
        honest = [node for node in cheated if node not in riders]
        honest_baseline = mean_finite([baseline[h] for h in honest])
        honest_ratio = (
            mean_finite([cheated[h] for h in honest]) / honest_baseline
            if honest_baseline
            else 1.0
        )
        result.add_point("free riders", count, rider_ratio)
        result.add_point("non free riders", count, honest_ratio)
    return result


def _fig4_one_spec(
    n: int,
    k_values: Sequence[int],
    inflation: float,
    seed: SeedLike,
    br_rounds: int,
    free_rider: int,
) -> ScenarioSpec:
    return ScenarioSpec(
        experiment="fig4-one-freerider",
        n=int(n),
        k_grid=tuple(int(k) for k in k_values),
        policies=("best-response",),
        metric="delay-true",
        br_rounds=int(br_rounds),
        cheating=CheatingSpec(free_riders=(int(free_rider),), inflation=float(inflation)),
        seed=coerce_seed(seed),
    )


def fig4_one_free_rider(
    n: int = 50,
    k_values: Sequence[int] = DEFAULT_K_VALUES,
    *,
    inflation: float = 2.0,
    seed: SeedLike = 0,
    br_rounds: int = 3,
    free_rider: int = 0,
    batched: bool = True,
) -> ExperimentResult:
    """Fig. 4 left: one free rider inflating its outgoing costs by 2x."""
    spec = _fig4_one_spec(n, k_values, inflation, seed, br_rounds, free_rider)
    return SimulationSession(spec, batched=batched).run()


def _fig4_many_spec(
    n: int,
    free_rider_counts: Sequence[int],
    k: int,
    inflation: float,
    seed: SeedLike,
    br_rounds: int,
) -> ScenarioSpec:
    return ScenarioSpec(
        experiment="fig4-many-freeriders",
        n=int(n),
        k_grid=(int(k),),
        policies=("best-response",),
        metric="delay-true",
        br_rounds=int(br_rounds),
        cheating=CheatingSpec(free_riders=(), inflation=float(inflation)),
        seed=coerce_seed(seed),
        params={
            "free_rider_counts": [int(c) for c in free_rider_counts],
            "k": int(k),
        },
    )


def fig4_many_free_riders(
    n: int = 50,
    free_rider_counts: Sequence[int] = DEFAULT_FREE_RIDER_COUNTS,
    *,
    k: int = 2,
    inflation: float = 2.0,
    seed: SeedLike = 0,
    br_rounds: int = 3,
    batched: bool = True,
) -> ExperimentResult:
    """Fig. 4 right: a growing population of free riders at k = 2."""
    spec = _fig4_many_spec(n, free_rider_counts, k, inflation, seed, br_rounds)
    return SimulationSession(spec, batched=batched).run()


register_scenario(
    "fig4-one-freerider",
    help="Fig. 4 left: one free rider",
    default_spec=lambda: _fig4_one_spec(50, DEFAULT_K_VALUES, 2.0, 2008, 3, 0),
    runner=_run_fig4_one,
    smoke_args=("--n", "12", "--k", "2", "--br-rounds", "1"),
)

register_scenario(
    "fig4-many-freeriders",
    help="Fig. 4 right: many free riders at k=2",
    default_spec=lambda: _fig4_many_spec(50, DEFAULT_FREE_RIDER_COUNTS, 2, 2.0, 2008, 3),
    runner=_run_fig4_many,
    smoke_args=("--n", "12", "--k", "2", "--br-rounds", "1", "--param", "free_rider_counts=0,2"),
)
