"""Figure 4: robustness to free riders.

Free riders announce link costs twice as high as the real ones, hoping to
discourage other nodes from selecting them as upstream neighbours.  The
paper shows that both the free riders' and the honest nodes' costs stay
very close to the no-free-rider baseline — EGOIST is robust to this abuse
even without audits.

Left panel: one free rider, cost ratio vs k.  Right panel: many free
riders (up to one third of the population) at k = 2.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.core.cheating import CheatingModel
from repro.core.cost import DelayMetric
from repro.core.policies import BestResponsePolicy, build_overlay
from repro.experiments.harness import ExperimentResult, mean_finite
from repro.netsim.planetlab import synthetic_planetlab
from repro.util.rng import SeedLike, as_generator

DEFAULT_K_VALUES = (2, 3, 4, 5, 6, 7, 8)
DEFAULT_FREE_RIDER_COUNTS = (0, 2, 4, 6, 8, 10, 12, 14, 16)


def _costs_with_free_riders(
    truth: DelayMetric,
    free_riders: Iterable[int],
    k: int,
    *,
    inflation: float,
    rng,
    br_rounds: int,
) -> Dict[int, float]:
    """Per-node true costs of the BR overlay built from cheated announcements."""
    riders = set(free_riders)
    if riders:
        announced = CheatingModel(truth, riders, inflation).announced_metric()
    else:
        announced = truth
    wiring = build_overlay(
        BestResponsePolicy(), announced, k, rng=rng, br_rounds=br_rounds
    )
    return truth.all_node_costs(wiring.to_graph())


def fig4_one_free_rider(
    n: int = 50,
    k_values: Sequence[int] = DEFAULT_K_VALUES,
    *,
    inflation: float = 2.0,
    seed: SeedLike = 0,
    br_rounds: int = 3,
    free_rider: int = 0,
) -> ExperimentResult:
    """Fig. 4 left: one free rider inflating its outgoing costs by 2x."""
    rng = as_generator(seed)
    space, _nodes = synthetic_planetlab(n, seed=rng)
    truth = DelayMetric(space.matrix)
    result = ExperimentResult(
        figure="fig4-left",
        description="Individual cost with one free rider / cost without, vs k",
        x_label="k",
        y_label="individual cost / cost without free rider",
        metadata={"n": n, "inflation": inflation, "free_rider": free_rider},
    )
    for k in k_values:
        baseline = _costs_with_free_riders(
            truth, (), k, inflation=inflation, rng=rng, br_rounds=br_rounds
        )
        cheated = _costs_with_free_riders(
            truth, (free_rider,), k, inflation=inflation, rng=rng, br_rounds=br_rounds
        )
        baseline_rider = baseline[free_rider]
        baseline_others = mean_finite(
            [v for node, v in baseline.items() if node != free_rider]
        )
        rider_ratio = cheated[free_rider] / baseline_rider if baseline_rider else 1.0
        others_ratio = (
            mean_finite([v for node, v in cheated.items() if node != free_rider])
            / baseline_others
            if baseline_others
            else 1.0
        )
        result.add_point("free rider", k, rider_ratio)
        result.add_point("non free riders", k, others_ratio)
    return result


def fig4_many_free_riders(
    n: int = 50,
    free_rider_counts: Sequence[int] = DEFAULT_FREE_RIDER_COUNTS,
    *,
    k: int = 2,
    inflation: float = 2.0,
    seed: SeedLike = 0,
    br_rounds: int = 3,
) -> ExperimentResult:
    """Fig. 4 right: a growing population of free riders at k = 2."""
    rng = as_generator(seed)
    space, _nodes = synthetic_planetlab(n, seed=rng)
    truth = DelayMetric(space.matrix)
    baseline = _costs_with_free_riders(
        truth, (), k, inflation=inflation, rng=rng, br_rounds=br_rounds
    )
    baseline_mean = mean_finite(list(baseline.values()))
    result = ExperimentResult(
        figure="fig4-right",
        description="Individual cost with many free riders / cost without, k=2",
        x_label="population of free riders",
        y_label="individual cost / cost without free riders",
        metadata={"n": n, "k": k, "inflation": inflation},
    )
    for count in free_rider_counts:
        riders = set(range(int(count)))
        cheated = _costs_with_free_riders(
            truth, riders, k, inflation=inflation, rng=rng, br_rounds=br_rounds
        )
        if riders:
            rider_baseline = mean_finite([baseline[r] for r in riders])
            rider_mean = mean_finite([cheated[r] for r in riders])
            rider_ratio = rider_mean / rider_baseline if rider_baseline else 1.0
        else:
            rider_ratio = 1.0
        honest = [node for node in cheated if node not in riders]
        honest_baseline = mean_finite([baseline[h] for h in honest])
        honest_ratio = (
            mean_finite([cheated[h] for h in honest]) / honest_baseline
            if honest_baseline
            else 1.0
        )
        result.add_point("free riders", count, rider_ratio)
        result.add_point("non free riders", count, honest_ratio)
    return result
