"""Figure 1: baseline policy comparison on a 50-node overlay.

Four panels, all plotting the mean individual cost of each neighbour
selection policy normalised by BR's cost, as a function of the neighbour
budget ``k``:

* top-left: delay measured via ping (plus the full-mesh lower bound),
* top-right: delay estimated via the virtual coordinate system (pyxida),
* bottom-left: node (CPU) load,
* bottom-right: available bandwidth (there, the ratio of aggregate
  bandwidth to BR's — larger is better, so the ratios sit below 1).

Performance
-----------
A k-sweep is a batch of independent deployments — one per (policy, k)
pair — over one underlay, and :func:`policy_comparison` runs the whole
batch through :class:`~repro.core.deployment_batch.DeploymentBatch`
(``batched=True``, the default):

* the per-k underlay snapshots (announced + true metrics) are taken up
  front, every deployment gets its own spawned RNG stream, and the
  best-response deployments of the whole sweep run their dynamics in
  lockstep: each kernel call sweeps residual route values for a wave of
  ``(deployment, node)`` re-wiring opportunities at once — a
  block-diagonal CSR Dijkstra for delay/load, Floyd-Warshall max-min
  closures (or one divide-and-conquer avoid-one pass per overlay
  version) for bandwidth — and the re-wiring opportunities themselves
  (current-wiring evaluation, greedy seeding, local-search swap passes)
  are scored for all deployments in shared broadcasts;
* scoring stacks the built overlays' per-deployment route-value matrices
  into a single 3-D ``(deployments x hops x destinations)`` tensor —
  axis 0 indexes deployments, axis 1 the route sources ("first hops"),
  axis 2 the destinations — and reduces every node cost of every panel
  point in one preference-weighted broadcast, deduplicating deployments
  whose graphs fingerprint-identically (e.g. full-mesh over a drift-free
  underlay).

``batched=False`` preserves the sequential reference path (one
:func:`~repro.core.policies.build_overlay` plus one ``all_node_costs``
per deployment).  Both paths are bitwise identical series-for-series —
parity is tested, and the wall-clock gate lives in
``benchmarks/test_bench_deployment_batch.py``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.deployment_batch import DeploymentBatch, DeploymentSpec
from repro.core.policies import (
    BestResponsePolicy,
    FullMeshPolicy,
    KClosestPolicy,
    KRandomPolicy,
    KRegularPolicy,
    NeighborSelectionPolicy,
)
from repro.core.providers import (
    BandwidthMetricProvider,
    DelayMetricProvider,
    LoadMetricProvider,
    MetricProvider,
)
from repro.experiments.harness import ExperimentResult, add_normalized_sweep
from repro.netsim.bandwidth import BandwidthModel
from repro.netsim.load import NodeLoadModel
from repro.netsim.planetlab import synthetic_planetlab
from repro.util.rng import SeedLike, as_generator, spawn_generators

#: The policies compared in Fig. 1 (full mesh is added where the paper does).
COMPARISON_POLICIES: Dict[str, NeighborSelectionPolicy] = {
    "k-random": KRandomPolicy(),
    "k-regular": KRegularPolicy(),
    "k-closest": KClosestPolicy(),
    "best-response": BestResponsePolicy(),
}

DEFAULT_K_VALUES = (2, 3, 4, 5, 6, 7, 8)


def policy_comparison(
    provider: MetricProvider,
    k_values: Sequence[int],
    *,
    include_full_mesh: bool = False,
    seed: SeedLike = None,
    br_rounds: int = 4,
    policies: Optional[Dict[str, NeighborSelectionPolicy]] = None,
    batched: bool = True,
) -> ExperimentResult:
    """Generic Fig.-1-style comparison over one metric provider.

    Wirings are chosen from the *announced* metric (what nodes measured)
    and evaluated on the *true* metric, as in a real deployment.  The
    whole (policy, k) grid is dispatched as one
    :class:`~repro.core.deployment_batch.DeploymentBatch`; ``batched``
    selects the stacked kernels or the bit-identical sequential
    reference path (see the module docstring's Performance section).
    """
    rng = as_generator(seed)
    policies = dict(policies) if policies is not None else dict(COMPARISON_POLICIES)
    if include_full_mesh:
        policies["full-mesh"] = FullMeshPolicy()
    result = ExperimentResult(
        figure="fig1",
        description="Individual cost of neighbor selection policies normalized by BR",
        x_label="k",
        y_label="individual cost / BR cost",
        metadata={"n": provider.size, "maximize": provider.true_metric().maximize},
    )
    # Snapshot the underlay for every k up front (advancing the provider
    # exactly as the sequential loop did), then give every deployment its
    # own RNG stream so batched and sequential builds draw identically.
    specs: List[DeploymentSpec] = []
    for k in k_values:
        announced = provider.announced_metric()
        truth = provider.true_metric()
        for name, policy in policies.items():
            specs.append(
                DeploymentSpec(
                    label=name,
                    policy=policy,
                    k=int(k),
                    announced=announced,
                    truth=truth,
                    br_rounds=br_rounds,
                )
            )
        provider.advance(1)
    for spec, stream in zip(specs, spawn_generators(rng, len(specs))):
        spec.rng = stream
    means = DeploymentBatch(specs, batched=batched).run()
    labels = list(policies)
    for index, k in enumerate(k_values):
        base = index * len(labels)
        raw = {
            label: float(means[base + offset])
            for offset, label in enumerate(labels)
        }
        add_normalized_sweep(result, k, raw, "best-response")
    return result


def fig1_delay_ping(
    n: int = 50,
    k_values: Sequence[int] = DEFAULT_K_VALUES,
    *,
    seed: SeedLike = 0,
    br_rounds: int = 4,
    include_full_mesh: bool = True,
    batched: bool = True,
) -> ExperimentResult:
    """Fig. 1 top-left: delay via ping, including the full-mesh bound."""
    rng = as_generator(seed)
    space, _nodes = synthetic_planetlab(n, seed=rng)
    provider = DelayMetricProvider(space, estimator="ping", seed=rng)
    result = policy_comparison(
        provider,
        k_values,
        include_full_mesh=include_full_mesh,
        seed=rng,
        br_rounds=br_rounds,
        batched=batched,
    )
    result.figure = "fig1-delay-ping"
    result.description = "Delay (via ping): individual cost / BR cost vs k"
    return result


def fig1_delay_pyxida(
    n: int = 50,
    k_values: Sequence[int] = DEFAULT_K_VALUES,
    *,
    seed: SeedLike = 0,
    br_rounds: int = 4,
    coordinate_rounds: int = 30,
    batched: bool = True,
) -> ExperimentResult:
    """Fig. 1 top-right: delay estimated by the virtual coordinate system."""
    rng = as_generator(seed)
    space, _nodes = synthetic_planetlab(n, seed=rng)
    provider = DelayMetricProvider(
        space, estimator="pyxida", coordinate_rounds=coordinate_rounds, seed=rng
    )
    result = policy_comparison(
        provider,
        k_values,
        include_full_mesh=False,
        seed=rng,
        br_rounds=br_rounds,
        batched=batched,
    )
    result.figure = "fig1-delay-pyxida"
    result.description = "Delay (via pyxida coordinates): individual cost / BR cost vs k"
    return result


def fig1_node_load(
    n: int = 50,
    k_values: Sequence[int] = DEFAULT_K_VALUES,
    *,
    seed: SeedLike = 0,
    br_rounds: int = 4,
    batched: bool = True,
) -> ExperimentResult:
    """Fig. 1 bottom-left: node (CPU) load as the cost metric."""
    rng = as_generator(seed)
    load_model = NodeLoadModel(n, seed=rng)
    load_model.advance(5)
    provider = LoadMetricProvider(load_model)
    result = policy_comparison(
        provider,
        k_values,
        include_full_mesh=False,
        seed=rng,
        br_rounds=br_rounds,
        batched=batched,
    )
    result.figure = "fig1-node-load"
    result.description = "Node load: individual cost / BR cost vs k"
    return result


def fig1_bandwidth(
    n: int = 50,
    k_values: Sequence[int] = DEFAULT_K_VALUES,
    *,
    seed: SeedLike = 0,
    br_rounds: int = 4,
    batched: bool = True,
) -> ExperimentResult:
    """Fig. 1 bottom-right: available bandwidth (larger is better).

    The y-axis is the policy's aggregate available bandwidth divided by
    BR's, so values sit in (0, 1] with BR at 1.
    """
    rng = as_generator(seed)
    bw_model = BandwidthModel(n, seed=rng)
    provider = BandwidthMetricProvider(bw_model, seed=rng)
    result = policy_comparison(
        provider,
        k_values,
        include_full_mesh=False,
        seed=rng,
        br_rounds=br_rounds,
        batched=batched,
    )
    result.figure = "fig1-bandwidth"
    result.description = "Available bandwidth: total policy bandwidth / BR bandwidth vs k"
    result.y_label = "total avail. bw / BR avail. bw"
    return result
