"""Figure 1: baseline policy comparison on a 50-node overlay.

Four panels, all plotting the mean individual cost of each neighbour
selection policy normalised by BR's cost, as a function of the neighbour
budget ``k``:

* top-left: delay measured via ping (plus the full-mesh lower bound),
* top-right: delay estimated via the virtual coordinate system (pyxida),
* bottom-left: node (CPU) load,
* bottom-right: available bandwidth (there, the ratio of aggregate
  bandwidth to BR's — larger is better, so the ratios sit below 1).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.cost import Metric
from repro.core.policies import (
    BestResponsePolicy,
    FullMeshPolicy,
    KClosestPolicy,
    KRandomPolicy,
    KRegularPolicy,
    NeighborSelectionPolicy,
    build_overlay,
)
from repro.core.providers import (
    BandwidthMetricProvider,
    DelayMetricProvider,
    LoadMetricProvider,
    MetricProvider,
)
from repro.experiments.harness import ExperimentResult, normalize_against
from repro.netsim.bandwidth import BandwidthModel
from repro.netsim.load import NodeLoadModel
from repro.netsim.planetlab import synthetic_planetlab
from repro.util.rng import SeedLike, as_generator

#: The policies compared in Fig. 1 (full mesh is added where the paper does).
COMPARISON_POLICIES: Dict[str, NeighborSelectionPolicy] = {
    "k-random": KRandomPolicy(),
    "k-regular": KRegularPolicy(),
    "k-closest": KClosestPolicy(),
    "best-response": BestResponsePolicy(),
}

DEFAULT_K_VALUES = (2, 3, 4, 5, 6, 7, 8)


def _mean_cost_for_policy(
    policy: NeighborSelectionPolicy,
    announced: Metric,
    truth: Metric,
    k: int,
    *,
    rng,
    br_rounds: int,
) -> float:
    """Mean per-node cost (on the true metric) of the overlay built by ``policy``.

    Wirings are chosen from the *announced* metric (what nodes measured)
    and evaluated on the *true* metric, as in a real deployment.
    """
    wiring = build_overlay(policy, announced, k, rng=rng, br_rounds=br_rounds)
    graph = wiring.to_graph()
    costs = truth.all_node_costs(graph)
    return float(np.mean(list(costs.values())))


def policy_comparison(
    provider: MetricProvider,
    k_values: Sequence[int],
    *,
    include_full_mesh: bool = False,
    seed: SeedLike = None,
    br_rounds: int = 4,
    policies: Optional[Dict[str, NeighborSelectionPolicy]] = None,
) -> ExperimentResult:
    """Generic Fig.-1-style comparison over one metric provider."""
    rng = as_generator(seed)
    policies = dict(policies) if policies is not None else dict(COMPARISON_POLICIES)
    if include_full_mesh:
        policies["full-mesh"] = FullMeshPolicy()
    result = ExperimentResult(
        figure="fig1",
        description="Individual cost of neighbor selection policies normalized by BR",
        x_label="k",
        y_label="individual cost / BR cost",
        metadata={"n": provider.size, "maximize": provider.true_metric().maximize},
    )
    for k in k_values:
        announced = provider.announced_metric()
        truth = provider.true_metric()
        raw: Dict[str, float] = {}
        for name, policy in policies.items():
            raw[name] = _mean_cost_for_policy(
                policy, announced, truth, k, rng=rng, br_rounds=br_rounds
            )
        normalized = normalize_against(raw, "best-response")
        for name, value in normalized.items():
            result.add_point(name, k, value)
        for name, value in raw.items():
            result.add_point(f"{name} (raw)", k, value)
        provider.advance(1)
    return result


def fig1_delay_ping(
    n: int = 50,
    k_values: Sequence[int] = DEFAULT_K_VALUES,
    *,
    seed: SeedLike = 0,
    br_rounds: int = 4,
    include_full_mesh: bool = True,
) -> ExperimentResult:
    """Fig. 1 top-left: delay via ping, including the full-mesh bound."""
    rng = as_generator(seed)
    space, _nodes = synthetic_planetlab(n, seed=rng)
    provider = DelayMetricProvider(space, estimator="ping", seed=rng)
    result = policy_comparison(
        provider,
        k_values,
        include_full_mesh=include_full_mesh,
        seed=rng,
        br_rounds=br_rounds,
    )
    result.figure = "fig1-delay-ping"
    result.description = "Delay (via ping): individual cost / BR cost vs k"
    return result


def fig1_delay_pyxida(
    n: int = 50,
    k_values: Sequence[int] = DEFAULT_K_VALUES,
    *,
    seed: SeedLike = 0,
    br_rounds: int = 4,
    coordinate_rounds: int = 30,
) -> ExperimentResult:
    """Fig. 1 top-right: delay estimated by the virtual coordinate system."""
    rng = as_generator(seed)
    space, _nodes = synthetic_planetlab(n, seed=rng)
    provider = DelayMetricProvider(
        space, estimator="pyxida", coordinate_rounds=coordinate_rounds, seed=rng
    )
    result = policy_comparison(
        provider, k_values, include_full_mesh=False, seed=rng, br_rounds=br_rounds
    )
    result.figure = "fig1-delay-pyxida"
    result.description = "Delay (via pyxida coordinates): individual cost / BR cost vs k"
    return result


def fig1_node_load(
    n: int = 50,
    k_values: Sequence[int] = DEFAULT_K_VALUES,
    *,
    seed: SeedLike = 0,
    br_rounds: int = 4,
) -> ExperimentResult:
    """Fig. 1 bottom-left: node (CPU) load as the cost metric."""
    rng = as_generator(seed)
    load_model = NodeLoadModel(n, seed=rng)
    load_model.advance(5)
    provider = LoadMetricProvider(load_model)
    result = policy_comparison(
        provider, k_values, include_full_mesh=False, seed=rng, br_rounds=br_rounds
    )
    result.figure = "fig1-node-load"
    result.description = "Node load: individual cost / BR cost vs k"
    return result


def fig1_bandwidth(
    n: int = 50,
    k_values: Sequence[int] = DEFAULT_K_VALUES,
    *,
    seed: SeedLike = 0,
    br_rounds: int = 4,
) -> ExperimentResult:
    """Fig. 1 bottom-right: available bandwidth (larger is better).

    The y-axis is the policy's aggregate available bandwidth divided by
    BR's, so values sit in (0, 1] with BR at 1.
    """
    rng = as_generator(seed)
    bw_model = BandwidthModel(n, seed=rng)
    provider = BandwidthMetricProvider(bw_model, seed=rng)
    result = policy_comparison(
        provider, k_values, include_full_mesh=False, seed=rng, br_rounds=br_rounds
    )
    result.figure = "fig1-bandwidth"
    result.description = "Available bandwidth: total policy bandwidth / BR bandwidth vs k"
    result.y_label = "total avail. bw / BR avail. bw"
    return result
