"""Figure 1: baseline policy comparison on a 50-node overlay.

Four panels, all plotting the mean individual cost of each neighbour
selection policy normalised by BR's cost, as a function of the neighbour
budget ``k``:

* top-left: delay measured via ping (plus the full-mesh lower bound),
* top-right: delay estimated via the virtual coordinate system (pyxida),
* bottom-left: node (CPU) load,
* bottom-right: available bandwidth (there, the ratio of aggregate
  bandwidth to BR's — larger is better, so the ratios sit below 1).

Every panel is a declarative :class:`~repro.scenario.spec.ScenarioSpec`
(experiment names ``fig1-*``) realised through
:class:`~repro.scenario.session.SimulationSession`; the public
``fig1_*`` functions below are thin spec constructions kept for direct
Python use.

Performance
-----------
A k-sweep is a batch of independent deployments — one per (policy, k)
pair — over one underlay, and :func:`policy_comparison` runs the whole
batch through :class:`~repro.core.deployment_batch.DeploymentBatch`
(``batched=True``, the default):

* the per-k underlay snapshots (announced + true metrics) are taken up
  front, every deployment gets its own spawned RNG stream, and the
  best-response deployments of the whole sweep run their dynamics in
  lockstep with residual sweeps and re-wiring opportunities fused into
  shared kernel calls;
* scoring stacks the built overlays' per-deployment route-value matrices
  into a single 3-D ``(deployments x hops x destinations)`` tensor and
  reduces every node cost of every panel point in one
  preference-weighted broadcast.

``batched=False`` preserves the sequential reference path (one
:func:`~repro.core.policies.build_overlay` plus one ``all_node_costs``
per deployment).  Both paths are bitwise identical series-for-series —
parity is tested, and the wall-clock gate lives in
``benchmarks/test_bench_deployment_batch.py``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.deployment_batch import DeploymentBatch, DeploymentSpec
from repro.core.policies import (
    BestResponsePolicy,
    FullMeshPolicy,
    KClosestPolicy,
    KRandomPolicy,
    KRegularPolicy,
    NeighborSelectionPolicy,
)
from repro.core.providers import MetricProvider
from repro.experiments.harness import ExperimentResult, add_normalized_sweep
from repro.scenario.registry import register_scenario
from repro.scenario.session import SimulationSession
from repro.scenario.spec import ScenarioSpec, coerce_seed
from repro.util.rng import SeedLike, as_generator, spawn_generators

#: The policies compared in Fig. 1 (full mesh is added where the paper does).
COMPARISON_POLICIES: Dict[str, NeighborSelectionPolicy] = {
    "k-random": KRandomPolicy(),
    "k-regular": KRegularPolicy(),
    "k-closest": KClosestPolicy(),
    "best-response": BestResponsePolicy(),
}

DEFAULT_K_VALUES = (2, 3, 4, 5, 6, 7, 8)

#: Per-panel presentation of the generic comparison result.
_FIG1_PANELS = {
    "fig1-delay-ping": {
        "metric": "delay-ping",
        "description": "Delay (via ping): individual cost / BR cost vs k",
        "help": "Fig. 1 top-left: delay via ping, cost/BR vs k (with full mesh)",
        "include_full_mesh": True,
    },
    "fig1-delay-pyxida": {
        "metric": "delay-pyxida",
        "description": "Delay (via pyxida coordinates): individual cost / BR cost vs k",
        "help": "Fig. 1 top-right: delay via virtual coordinates",
        "include_full_mesh": False,
    },
    "fig1-node-load": {
        "metric": "load",
        "description": "Node load: individual cost / BR cost vs k",
        "help": "Fig. 1 bottom-left: node CPU load",
        "include_full_mesh": False,
    },
    "fig1-bandwidth": {
        "metric": "bandwidth",
        "description": "Available bandwidth: total policy bandwidth / BR bandwidth vs k",
        "help": "Fig. 1 bottom-right: available bandwidth",
        "include_full_mesh": False,
        "y_label": "total avail. bw / BR avail. bw",
    },
}


def policy_comparison(
    provider: MetricProvider,
    k_values: Sequence[int],
    *,
    include_full_mesh: bool = False,
    seed: SeedLike = None,
    br_rounds: int = 4,
    policies: Optional[Dict[str, NeighborSelectionPolicy]] = None,
    batched: bool = True,
) -> ExperimentResult:
    """Generic Fig.-1-style comparison over one metric provider.

    Wirings are chosen from the *announced* metric (what nodes measured)
    and evaluated on the *true* metric, as in a real deployment.  The
    whole (policy, k) grid is dispatched as one
    :class:`~repro.core.deployment_batch.DeploymentBatch`; ``batched``
    selects the stacked kernels or the bit-identical sequential
    reference path (see the module docstring's Performance section).
    """
    rng = as_generator(seed)
    policies = dict(policies) if policies is not None else dict(COMPARISON_POLICIES)
    if include_full_mesh:
        policies["full-mesh"] = FullMeshPolicy()
    result = ExperimentResult(
        figure="fig1",
        description="Individual cost of neighbor selection policies normalized by BR",
        x_label="k",
        y_label="individual cost / BR cost",
        metadata={"n": provider.size, "maximize": provider.true_metric().maximize},
    )
    # Snapshot the underlay for every k up front (advancing the provider
    # exactly as the sequential loop did), then give every deployment its
    # own RNG stream so batched and sequential builds draw identically.
    specs: List[DeploymentSpec] = []
    for k in k_values:
        announced = provider.announced_metric()
        truth = provider.true_metric()
        for name, policy in policies.items():
            specs.append(
                DeploymentSpec(
                    label=name,
                    policy=policy,
                    k=int(k),
                    announced=announced,
                    truth=truth,
                    br_rounds=br_rounds,
                )
            )
        provider.advance(1)
    for spec, stream in zip(specs, spawn_generators(rng, len(specs))):
        spec.rng = stream
    means = DeploymentBatch(specs, batched=batched).run()
    labels = list(policies)
    for index, k in enumerate(k_values):
        base = index * len(labels)
        raw = {
            label: float(means[base + offset])
            for offset, label in enumerate(labels)
        }
        add_normalized_sweep(result, k, raw, "best-response")
    return result


def _run_fig1(session: SimulationSession) -> ExperimentResult:
    """Registered runner shared by all four Fig. 1 panels."""
    spec = session.spec
    panel = _FIG1_PANELS[spec.experiment]
    rng = as_generator(spec.seed)
    provider = session.make_provider(rng)
    result = policy_comparison(
        provider,
        spec.k_grid,
        include_full_mesh=bool(spec.param("include_full_mesh", False)),
        seed=rng,
        br_rounds=spec.br_rounds,
        policies=session.policy_map(),
        batched=session.batched,
    )
    result.figure = spec.experiment
    result.description = panel["description"]
    if "y_label" in panel:
        result.y_label = panel["y_label"]
    return result


def _fig1_spec(
    experiment: str,
    n: int,
    k_values: Sequence[int],
    seed: SeedLike,
    br_rounds: int,
    **params,
) -> ScenarioSpec:
    panel = _FIG1_PANELS[experiment]
    merged = {"include_full_mesh": panel["include_full_mesh"], **params}
    return ScenarioSpec(
        experiment=experiment,
        n=int(n),
        k_grid=tuple(int(k) for k in k_values),
        metric=panel["metric"],
        br_rounds=int(br_rounds),
        seed=coerce_seed(seed),
        params=merged,
    )


def fig1_delay_ping(
    n: int = 50,
    k_values: Sequence[int] = DEFAULT_K_VALUES,
    *,
    seed: SeedLike = 0,
    br_rounds: int = 4,
    include_full_mesh: bool = True,
    batched: bool = True,
) -> ExperimentResult:
    """Fig. 1 top-left: delay via ping, including the full-mesh bound."""
    spec = _fig1_spec(
        "fig1-delay-ping", n, k_values, seed, br_rounds,
        include_full_mesh=bool(include_full_mesh),
    )
    return SimulationSession(spec, batched=batched).run()


def fig1_delay_pyxida(
    n: int = 50,
    k_values: Sequence[int] = DEFAULT_K_VALUES,
    *,
    seed: SeedLike = 0,
    br_rounds: int = 4,
    coordinate_rounds: int = 30,
    batched: bool = True,
) -> ExperimentResult:
    """Fig. 1 top-right: delay estimated by the virtual coordinate system."""
    spec = _fig1_spec(
        "fig1-delay-pyxida", n, k_values, seed, br_rounds,
        coordinate_rounds=int(coordinate_rounds),
    )
    return SimulationSession(spec, batched=batched).run()


def fig1_node_load(
    n: int = 50,
    k_values: Sequence[int] = DEFAULT_K_VALUES,
    *,
    seed: SeedLike = 0,
    br_rounds: int = 4,
    batched: bool = True,
) -> ExperimentResult:
    """Fig. 1 bottom-left: node (CPU) load as the cost metric."""
    spec = _fig1_spec("fig1-node-load", n, k_values, seed, br_rounds)
    return SimulationSession(spec, batched=batched).run()


def fig1_bandwidth(
    n: int = 50,
    k_values: Sequence[int] = DEFAULT_K_VALUES,
    *,
    seed: SeedLike = 0,
    br_rounds: int = 4,
    batched: bool = True,
) -> ExperimentResult:
    """Fig. 1 bottom-right: available bandwidth (larger is better).

    The y-axis is the policy's aggregate available bandwidth divided by
    BR's, so values sit in (0, 1] with BR at 1.
    """
    spec = _fig1_spec("fig1-bandwidth", n, k_values, seed, br_rounds)
    return SimulationSession(spec, batched=batched).run()


def _register() -> None:
    for name, panel in _FIG1_PANELS.items():
        def default_spec(name=name):
            return _fig1_spec(name, 50, DEFAULT_K_VALUES, 2008, 4)

        register_scenario(
            name,
            help=panel["help"],
            default_spec=default_spec,
            runner=_run_fig1,
            smoke_args=("--n", "12", "--k", "2,3", "--br-rounds", "1"),
        )


_register()
