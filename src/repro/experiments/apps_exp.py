"""Figures 10 and 11: application-level benefits of EGOIST redirection.

Fig. 10: available-bandwidth gain of multipath transfer through the k
first-hop neighbours (one session per neighbour), compared with the single
direct IP path, and the ceiling when all peers allow redirection
(max-flow).  Fig. 11: number of disjoint overlay paths between a source
and a target, as a function of k.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.apps.multipath import MultipathTransferApp
from repro.apps.realtime import RealTimeRedirectionApp
from repro.core.cost import BandwidthMetric, DelayMetric, Metric
from repro.core.deployment_batch import DeploymentBatch, DeploymentSpec
from repro.core.policies import BestResponsePolicy
from repro.experiments.harness import ExperimentResult, mean_finite
from repro.netsim.autonomous_systems import ASTopology
from repro.netsim.bandwidth import BandwidthModel
from repro.netsim.planetlab import synthetic_planetlab
from repro.util.rng import SeedLike, as_generator, spawn_generators

DEFAULT_K_VALUES = (2, 3, 4, 5, 6, 7, 8)


def _sample_pairs(n: int, count: int, rng) -> list:
    pairs = [(i, j) for i in range(n) for j in range(n) if i != j]
    if len(pairs) <= count:
        return pairs
    idx = rng.choice(len(pairs), size=count, replace=False)
    return [pairs[i] for i in idx]


def _br_overlays_for_ks(
    metric: Metric,
    k_values: Sequence[int],
    rng,
    *,
    br_rounds: int,
    batched: bool,
) -> List:
    """One BR overlay per k, built as a single deployment batch.

    All k values share the same announced metric (one underlay snapshot),
    so the batch fingerprints it once and runs the best-response dynamics
    of the whole sweep in lockstep.
    """
    specs = [
        DeploymentSpec(
            label=f"k={k}",
            policy=BestResponsePolicy(),
            k=int(k),
            announced=metric,
            truth=metric,
            br_rounds=br_rounds,
        )
        for k in k_values
    ]
    for spec, stream in zip(specs, spawn_generators(rng, len(specs))):
        spec.rng = stream
    return DeploymentBatch(specs, batched=batched).build()


def fig10_multipath_gain(
    n: int = 50,
    k_values: Sequence[int] = DEFAULT_K_VALUES,
    *,
    seed: SeedLike = 0,
    br_rounds: int = 3,
    pairs_per_k: int = 100,
    batched: bool = True,
) -> ExperimentResult:
    """Fig. 10: available-bandwidth gain of multipath transfer vs k."""
    rng = as_generator(seed)
    bandwidth = BandwidthModel(n, seed=rng)
    as_topology = ASTopology(n, seed=rng)
    metric = BandwidthMetric(bandwidth.matrix())
    result = ExperimentResult(
        figure="fig10",
        description="Available bandwidth gain of multipath redirection vs k",
        x_label="k",
        y_label="available bandwidth gain",
        metadata={"n": n, **as_topology.describe()},
    )
    pairs = _sample_pairs(n, pairs_per_k, rng)
    overlays = _br_overlays_for_ks(
        metric, k_values, rng, br_rounds=br_rounds, batched=batched
    )
    for k, overlay in zip(k_values, overlays):
        app = MultipathTransferApp(overlay, bandwidth, as_topology)
        gains = []
        ceilings = []
        for source, target in pairs:
            plan = app.plan(source, target)
            if np.isfinite(plan.gain):
                gains.append(plan.gain)
            if np.isfinite(plan.maxflow_gain):
                ceilings.append(plan.maxflow_gain)
        result.add_point("source establ. parallel connections", k, mean_finite(gains))
        result.add_point("peers allow multipath redirections", k, mean_finite(ceilings))
    return result


def fig11_disjoint_paths(
    n: int = 50,
    k_values: Sequence[int] = DEFAULT_K_VALUES,
    *,
    seed: SeedLike = 0,
    br_rounds: int = 3,
    pairs_per_k: int = 100,
    batched: bool = True,
) -> ExperimentResult:
    """Fig. 11: number of disjoint overlay paths vs k (delay-based overlay)."""
    rng = as_generator(seed)
    space, _nodes = synthetic_planetlab(n, seed=rng)
    metric = DelayMetric(space.matrix)
    result = ExperimentResult(
        figure="fig11",
        description="Number of disjoint overlay paths between node pairs vs k",
        x_label="k",
        y_label="number of disjoint paths",
        metadata={"n": n},
    )
    pairs = _sample_pairs(n, pairs_per_k, rng)
    overlays = _br_overlays_for_ks(
        metric, k_values, rng, br_rounds=br_rounds, batched=batched
    )
    for k, overlay in zip(k_values, overlays):
        app = RealTimeRedirectionApp(overlay)
        counts = [app.disjoint_path_count(s, t) for s, t in pairs]
        result.add_point("disjoint paths", k, mean_finite(counts))
    return result
