"""Figures 10 and 11: application-level benefits of EGOIST redirection.

Fig. 10: available-bandwidth gain of multipath transfer through the k
first-hop neighbours (one session per neighbour), compared with the single
direct IP path, and the ceiling when all peers allow redirection
(max-flow).  Fig. 11: number of disjoint overlay paths between a source
and a target, as a function of k.

Both are build-only scenarios: the per-k BR overlays are constructed as
one :class:`~repro.core.deployment_batch.DeploymentBatch` (shared
announced-metric fingerprints, lockstep best-response dynamics), then
the application layer analyses each overlay.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.apps.multipath import MultipathTransferApp
from repro.apps.realtime import RealTimeRedirectionApp
from repro.core.cost import BandwidthMetric, DelayMetric, Metric
from repro.core.deployment_batch import DeploymentSpec
from repro.core.policies import BestResponsePolicy
from repro.experiments.harness import ExperimentResult, mean_finite
from repro.netsim.autonomous_systems import ASTopology
from repro.netsim.bandwidth import BandwidthModel
from repro.netsim.planetlab import synthetic_planetlab
from repro.scenario.registry import register_scenario
from repro.scenario.session import SimulationSession
from repro.scenario.spec import ScenarioSpec, coerce_seed
from repro.util.rng import SeedLike, as_generator

DEFAULT_K_VALUES = (2, 3, 4, 5, 6, 7, 8)


def _sample_pairs(n: int, count: int, rng) -> list:
    pairs = [(i, j) for i in range(n) for j in range(n) if i != j]
    if len(pairs) <= count:
        return pairs
    idx = rng.choice(len(pairs), size=count, replace=False)
    return [pairs[i] for i in idx]


def _br_overlays_for_ks(
    session: SimulationSession,
    metric: Metric,
    k_values: Sequence[int],
    rng,
    *,
    br_rounds: int,
) -> List:
    """One BR overlay per k, built as a single deployment batch.

    All k values share the same announced metric (one underlay snapshot),
    so the batch fingerprints it once and runs the best-response dynamics
    of the whole sweep in lockstep.
    """

    def build(k):
        return DeploymentSpec(
            label=f"k={k}",
            policy=BestResponsePolicy(),
            k=int(k),
            announced=metric,
            truth=metric,
            br_rounds=br_rounds,
        )

    return session.build_deployments(session.deployment_grid(k_values, rng, build))


def _run_fig10(session: SimulationSession) -> ExperimentResult:
    spec = session.spec
    rng = as_generator(spec.seed)
    bandwidth = BandwidthModel(spec.n, seed=rng)
    as_topology = ASTopology(spec.n, seed=rng)
    metric = BandwidthMetric(bandwidth.matrix())
    result = ExperimentResult(
        figure="fig10",
        description="Available bandwidth gain of multipath redirection vs k",
        x_label="k",
        y_label="available bandwidth gain",
        metadata={"n": spec.n, **as_topology.describe()},
    )
    pairs = _sample_pairs(spec.n, int(spec.param("pairs_per_k", 100)), rng)
    overlays = _br_overlays_for_ks(
        session, metric, spec.k_grid, rng, br_rounds=spec.br_rounds
    )
    for k, overlay in zip(spec.k_grid, overlays):
        app = MultipathTransferApp(overlay, bandwidth, as_topology)
        gains = []
        ceilings = []
        for source, target in pairs:
            plan = app.plan(source, target)
            if np.isfinite(plan.gain):
                gains.append(plan.gain)
            if np.isfinite(plan.maxflow_gain):
                ceilings.append(plan.maxflow_gain)
        result.add_point("source establ. parallel connections", k, mean_finite(gains))
        result.add_point("peers allow multipath redirections", k, mean_finite(ceilings))
    return result


def _run_fig11(session: SimulationSession) -> ExperimentResult:
    spec = session.spec
    rng = as_generator(spec.seed)
    space, _nodes = synthetic_planetlab(spec.n, seed=rng)
    metric = DelayMetric(space.matrix)
    result = ExperimentResult(
        figure="fig11",
        description="Number of disjoint overlay paths between node pairs vs k",
        x_label="k",
        y_label="number of disjoint paths",
        metadata={"n": spec.n},
    )
    pairs = _sample_pairs(spec.n, int(spec.param("pairs_per_k", 100)), rng)
    overlays = _br_overlays_for_ks(
        session, metric, spec.k_grid, rng, br_rounds=spec.br_rounds
    )
    for k, overlay in zip(spec.k_grid, overlays):
        app = RealTimeRedirectionApp(overlay)
        counts = [app.disjoint_path_count(s, t) for s, t in pairs]
        result.add_point("disjoint paths", k, mean_finite(counts))
    return result


def _fig10_spec(
    n: int, k_values: Sequence[int], seed: SeedLike, br_rounds: int, pairs_per_k: int
) -> ScenarioSpec:
    return ScenarioSpec(
        experiment="fig10-multipath",
        n=int(n),
        k_grid=tuple(int(k) for k in k_values),
        policies=("best-response",),
        metric="bandwidth",
        br_rounds=int(br_rounds),
        seed=coerce_seed(seed),
        params={"pairs_per_k": int(pairs_per_k)},
    )


def fig10_multipath_gain(
    n: int = 50,
    k_values: Sequence[int] = DEFAULT_K_VALUES,
    *,
    seed: SeedLike = 0,
    br_rounds: int = 3,
    pairs_per_k: int = 100,
    batched: bool = True,
) -> ExperimentResult:
    """Fig. 10: available-bandwidth gain of multipath transfer vs k."""
    spec = _fig10_spec(n, k_values, seed, br_rounds, pairs_per_k)
    return SimulationSession(spec, batched=batched).run()


def _fig11_spec(
    n: int, k_values: Sequence[int], seed: SeedLike, br_rounds: int, pairs_per_k: int
) -> ScenarioSpec:
    return ScenarioSpec(
        experiment="fig11-disjoint",
        n=int(n),
        k_grid=tuple(int(k) for k in k_values),
        policies=("best-response",),
        metric="delay-true",
        br_rounds=int(br_rounds),
        seed=coerce_seed(seed),
        params={"pairs_per_k": int(pairs_per_k)},
    )


def fig11_disjoint_paths(
    n: int = 50,
    k_values: Sequence[int] = DEFAULT_K_VALUES,
    *,
    seed: SeedLike = 0,
    br_rounds: int = 3,
    pairs_per_k: int = 100,
    batched: bool = True,
) -> ExperimentResult:
    """Fig. 11: number of disjoint overlay paths vs k (delay-based overlay)."""
    spec = _fig11_spec(n, k_values, seed, br_rounds, pairs_per_k)
    return SimulationSession(spec, batched=batched).run()


register_scenario(
    "fig10-multipath",
    help="Fig. 10: multipath available-bandwidth gain vs k",
    default_spec=lambda: _fig10_spec(50, DEFAULT_K_VALUES, 2008, 3, 100),
    runner=_run_fig10,
    smoke_args=("--n", "12", "--k", "2,3", "--br-rounds", "1", "--param", "pairs_per_k=10"),
)

register_scenario(
    "fig11-disjoint",
    help="Fig. 11: disjoint overlay paths vs k",
    default_spec=lambda: _fig11_spec(50, DEFAULT_K_VALUES, 2008, 3, 100),
    runner=_run_fig11,
    smoke_args=("--n", "12", "--k", "2,3", "--br-rounds", "1", "--param", "pairs_per_k=10"),
)
