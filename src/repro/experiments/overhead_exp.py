"""Section 4.3 overhead accounting as an experiment table.

Produces, for a range of k, the per-node measurement and protocol loads
predicted by the paper's formulas, together with the scalability gain of
monitoring ``n k`` rather than ``n (n - 1)`` links — and, optionally,
cross-checks the link-state figure against the traffic actually accounted
by a short engine run.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.engine import EgoistEngine
from repro.core.overhead import overhead_report
from repro.core.policies import BestResponsePolicy
from repro.core.providers import DelayMetricProvider
from repro.experiments.harness import ExperimentResult
from repro.netsim.planetlab import synthetic_planetlab
from repro.util.rng import SeedLike, as_generator

DEFAULT_K_VALUES = (2, 3, 4, 5, 6, 7, 8)


def overhead_table(
    n: int = 50,
    k_values: Sequence[int] = DEFAULT_K_VALUES,
    *,
    epoch_length_s: float = 60.0,
    announce_interval_s: float = 20.0,
    validate_with_engine: bool = False,
    engine_epochs: int = 3,
    seed: SeedLike = 0,
) -> ExperimentResult:
    """Per-node overhead (bps) and scalability gain for each k."""
    result = ExperimentResult(
        figure="section-4.3",
        description="Per-node measurement and link-state overheads (bps)",
        x_label="k",
        y_label="bits per second per node",
        metadata={
            "n": n,
            "epoch_length_s": epoch_length_s,
            "announce_interval_s": announce_interval_s,
        },
    )
    for k in k_values:
        report = overhead_report(
            n,
            k,
            epoch_length_s=epoch_length_s,
            announce_interval_s=announce_interval_s,
        )
        result.add_point("ping measurement (bps)", k, report.ping_bps)
        result.add_point("coordinate measurement (bps)", k, report.coordinate_bps)
        result.add_point("link-state protocol (bps)", k, report.linkstate_bps)
        result.add_point("monitored links (EGOIST)", k, report.monitored_links)
        result.add_point("monitored links (full mesh)", k, report.fullmesh_monitored_links)
        result.add_point("scalability gain", k, report.scalability_gain)

    if validate_with_engine:
        rng = as_generator(seed)
        space, _nodes = synthetic_planetlab(n, seed=rng)
        for k in k_values:
            provider = DelayMetricProvider(space, estimator="true", seed=rng)
            engine = EgoistEngine(
                provider,
                BestResponsePolicy(),
                k,
                epoch_length=epoch_length_s,
                announce_interval=announce_interval_s,
                seed=rng,
            )
            history = engine.run(engine_epochs)
            # Announcements are flooded once per epoch in the simulation;
            # scale to the announce interval for an apples-to-apples rate.
            bits_per_epoch = float(
                np.mean([record.linkstate_bits for record in history.records])
            )
            per_node_bps = bits_per_epoch / n / epoch_length_s
            result.add_point("link-state measured (bps, simulated)", k, per_node_bps)
    return result
