"""Section 4.3 overhead accounting as an experiment table.

Produces, for a range of k, the per-node measurement and protocol loads
predicted by the paper's formulas, together with the scalability gain of
monitoring ``n k`` rather than ``n (n - 1)`` links — and, optionally,
cross-checks the link-state figure against the traffic actually accounted
by a short engine run (dispatched, like every epoch-loop scenario,
through :class:`~repro.core.engine_batch.EngineBatch`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.engine_batch import EngineSpec
from repro.core.overhead import overhead_report
from repro.core.policies import BestResponsePolicy
from repro.core.providers import DelayMetricProvider
from repro.experiments.harness import ExperimentResult
from repro.netsim.planetlab import synthetic_planetlab
from repro.scenario.registry import register_scenario
from repro.scenario.session import SimulationSession
from repro.scenario.spec import ScenarioSpec, coerce_seed
from repro.util.rng import SeedLike, as_generator

DEFAULT_K_VALUES = (2, 3, 4, 5, 6, 7, 8)


def _run_overheads(session: SimulationSession) -> ExperimentResult:
    spec = session.spec
    result = ExperimentResult(
        figure="section-4.3",
        description="Per-node measurement and link-state overheads (bps)",
        x_label="k",
        y_label="bits per second per node",
        metadata={
            "n": spec.n,
            "epoch_length_s": spec.epoch_length,
            "announce_interval_s": spec.announce_interval,
        },
    )
    for k in spec.k_grid:
        report = overhead_report(
            spec.n,
            int(k),
            epoch_length_s=spec.epoch_length,
            announce_interval_s=spec.announce_interval,
        )
        result.add_point("ping measurement (bps)", k, report.ping_bps)
        result.add_point("coordinate measurement (bps)", k, report.coordinate_bps)
        result.add_point("link-state protocol (bps)", k, report.linkstate_bps)
        result.add_point("monitored links (EGOIST)", k, report.monitored_links)
        result.add_point("monitored links (full mesh)", k, report.fullmesh_monitored_links)
        result.add_point("scalability gain", k, report.scalability_gain)

    if bool(spec.param("validate_with_engine", False)):
        # The epoch count rides on the spec; a spec that asked for engine
        # validation without epochs (e.g. `--param validate_with_engine=true`
        # on the build-only default) still gets a short run.
        epochs = spec.epochs if spec.epochs > 0 else 3
        rng = as_generator(spec.seed)
        space, _nodes = synthetic_planetlab(spec.n, seed=rng)

        def build(k, stream):
            return EngineSpec(
                label=f"k={k}",
                provider=DelayMetricProvider(space, estimator="true", seed=stream),
                policy=BestResponsePolicy(),
                k=int(k),
                epoch_length=spec.epoch_length,
                announce_interval=spec.announce_interval,
                seed=stream,
            )

        histories = session.engine_sweep(
            session.engine_grid(spec.k_grid, rng, build), epochs=epochs
        )
        for k, history in zip(spec.k_grid, histories):
            # Announcements are flooded once per epoch in the simulation;
            # scale to the announce interval for an apples-to-apples rate.
            bits_per_epoch = float(
                np.mean([record.linkstate_bits for record in history.records])
            )
            per_node_bps = bits_per_epoch / spec.n / spec.epoch_length
            result.add_point("link-state measured (bps, simulated)", k, per_node_bps)
    return result


def _overhead_spec(
    n: int,
    k_values: Sequence[int],
    epoch_length_s: float,
    announce_interval_s: float,
    validate_with_engine: bool,
    engine_epochs: int,
    seed: SeedLike,
) -> ScenarioSpec:
    return ScenarioSpec(
        experiment="overheads",
        n=int(n),
        k_grid=tuple(int(k) for k in k_values),
        policies=("best-response",),
        metric="delay-true",
        epochs=int(engine_epochs) if validate_with_engine else 0,
        epoch_length=float(epoch_length_s),
        announce_interval=float(announce_interval_s),
        seed=coerce_seed(seed),
        params={"validate_with_engine": bool(validate_with_engine)},
    )


def overhead_table(
    n: int = 50,
    k_values: Sequence[int] = DEFAULT_K_VALUES,
    *,
    epoch_length_s: float = 60.0,
    announce_interval_s: float = 20.0,
    validate_with_engine: bool = False,
    engine_epochs: int = 3,
    seed: SeedLike = 0,
    batched: bool = True,
) -> ExperimentResult:
    """Per-node overhead (bps) and scalability gain for each k."""
    spec = _overhead_spec(
        n, k_values, epoch_length_s, announce_interval_s,
        validate_with_engine, engine_epochs, seed,
    )
    return SimulationSession(spec, batched=batched).run()


register_scenario(
    "overheads",
    help="Section 4.3: measurement and link-state overheads",
    default_spec=lambda: _overhead_spec(50, DEFAULT_K_VALUES, 60.0, 20.0, False, 3, 2008),
    runner=_run_overheads,
    smoke_args=("--n", "12", "--k", "2,3"),
)
