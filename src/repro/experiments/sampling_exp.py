"""Figures 5-8: scalability via sampling.

An ``n = 295``-node overlay is constructed incrementally under one of the
base wiring strategies (BR for Fig. 5, k-Random for Fig. 6, k-Regular for
Fig. 7, k-Closest for Fig. 8).  A newcomer then joins using each of the
candidate strategies *restricted to a sample* of the residual graph —
k-Random / k-Regular / k-Closest with random sampling, BR with random
sampling, and BR with topology-based biased sampling (BRtp) — and its
resulting cost is normalised by the cost it would have achieved running BR
with no sampling at all.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.best_response import WiringEvaluator, best_response
from repro.core.cost import DelayMetric, Metric
from repro.core.policies import (
    BestResponsePolicy,
    KClosestPolicy,
    KRandomPolicy,
    KRegularPolicy,
    NeighborSelectionPolicy,
)
from repro.core.sampling import (
    random_sample,
    sampled_best_response,
    topology_biased_sample,
)
from repro.core.wiring import GlobalWiring, Wiring
from repro.experiments.harness import ExperimentResult
from repro.netsim.planetlab import synthetic_planetlab_trace
from repro.routing.graph import OverlayGraph
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import ValidationError

DEFAULT_SAMPLE_SIZES = (6, 8, 10, 12, 14, 16, 18, 20)


def incremental_overlay(
    metric: Metric,
    k: int,
    policy_name: str,
    *,
    nodes: Optional[Sequence[int]] = None,
    rng: SeedLike = None,
    ensure_connected: bool = True,
) -> GlobalWiring:
    """Grow an overlay incrementally: each arrival wires by ``policy_name``.

    This mirrors the paper's simulation setup, in which the base network is
    "constructed incrementally using the BR strategy (without sampling)" —
    or one of the heuristics, for Figs. 6-8.
    """
    rng = as_generator(rng)
    n = metric.size
    node_list = list(nodes) if nodes is not None else list(range(n))
    policies: Dict[str, NeighborSelectionPolicy] = {
        "best-response": BestResponsePolicy(),
        "k-random": KRandomPolicy(),
        "k-regular": KRegularPolicy(),
        "k-closest": KClosestPolicy(),
    }
    if policy_name not in policies:
        raise ValidationError(f"unknown base policy {policy_name!r}")
    policy = policies[policy_name]
    wiring = GlobalWiring(n)
    joined: list = []
    for node in node_list:
        joined.append(node)
        if len(joined) == 1:
            continue
        residual = wiring.to_graph(active=joined)
        budget = min(k, len(joined) - 1)
        chosen = policy.select(
            node,
            budget,
            metric,
            residual,
            candidates=[c for c in joined if c != node],
            rng=rng,
            destinations=[d for d in joined if d != node],
        )
        weights = {v: metric.link_weight(node, v) for v in chosen}
        wiring.set_wiring(Wiring.of(node, chosen), weights)
    if ensure_connected:
        # Late arrivals have no in-links (nobody re-wires after joining in
        # this incremental construction), which would leave parts of the
        # overlay unreachable and swamp every newcomer's cost with the
        # disconnection penalty.  A live system heals this through
        # re-wiring; we enforce the same ring the empirical policies use.
        from repro.core.policies import enforce_connectivity_cycle

        enforce_connectivity_cycle(wiring, metric, nodes=node_list)
    return wiring


def _newcomer_cost(
    metric: Metric,
    residual_graph: OverlayGraph,
    newcomer: int,
    neighbors: Sequence[int],
    existing: Sequence[int],
) -> float:
    """True cost of the newcomer once wired to ``neighbors``."""
    evaluator = WiringEvaluator(
        node=newcomer,
        metric=metric,
        residual_graph=residual_graph,
        candidates=[c for c in existing if c != newcomer],
        destinations=[d for d in existing if d != newcomer],
    )
    return evaluator.evaluate(neighbors)


def _run_sampling(session) -> ExperimentResult:
    """Registered runner for the Figs. 5-8 sampling scenarios."""
    spec = session.spec
    return _sampling_experiment(
        str(spec.param("base_policy", "best-response")),
        n=spec.n,
        k=int(spec.param("k", spec.k_grid[0])),
        radius=int(spec.param("radius", 2)),
        sample_sizes=tuple(
            int(m) for m in spec.param("sample_sizes", DEFAULT_SAMPLE_SIZES)
        ),
        trials=int(spec.param("trials", 5)),
        seed=spec.seed,
        oversample=int(spec.param("oversample", 3)),
    )


def _sampling_experiment(
    base_policy: str = "best-response",
    *,
    n: int = 295,
    k: int = 3,
    radius: int = 2,
    sample_sizes: Sequence[int] = DEFAULT_SAMPLE_SIZES,
    trials: int = 5,
    seed: SeedLike = 0,
    oversample: int = 3,
) -> ExperimentResult:
    """Newcomer cost vs sample size on a ``base_policy`` graph (Figs. 5-8).

    Parameters
    ----------
    base_policy:
        ``"best-response"`` (Fig. 5), ``"k-random"`` (Fig. 6),
        ``"k-regular"`` (Fig. 7), or ``"k-closest"`` (Fig. 8).
    n, k, radius:
        Overlay size, degree, and BRtp neighbourhood radius (paper: 295, 3, 2).
    sample_sizes:
        The x-axis sweep of sample sizes ``m``.
    trials:
        Newcomers averaged per sample size.
    """
    rng = as_generator(seed)
    space = synthetic_planetlab_trace(n, seed=rng)
    metric = DelayMetric(space.matrix)
    newcomer = n - 1
    existing = [v for v in range(n) if v != newcomer]
    base = incremental_overlay(
        metric, k, base_policy, nodes=existing, rng=rng
    )
    residual = base.to_graph(active=existing)

    # Reference: the newcomer's cost under BR with *no* sampling.
    reference = sampled_best_response(
        newcomer, metric, residual, k, existing, rng=rng
    )
    reference_cost = _newcomer_cost(
        metric, residual, newcomer, sorted(reference.neighbors), existing
    )

    figure_by_policy = {
        "best-response": "fig5",
        "k-random": "fig6",
        "k-regular": "fig7",
        "k-closest": "fig8",
    }
    result = ExperimentResult(
        figure=figure_by_policy.get(base_policy, "fig5"),
        description=(
            f"Newcomer cost / BR-no-sampling cost vs sample size on a {base_policy} graph"
        ),
        x_label="size of the sample",
        y_label="newcomer's cost / BR-no-sampling cost",
        metadata={
            "n": n,
            "k": k,
            "radius": radius,
            "base_policy": base_policy,
            "reference_cost": reference_cost,
        },
    )

    heuristics: Dict[str, NeighborSelectionPolicy] = {
        "k-random": KRandomPolicy(),
        "k-regular": KRegularPolicy(),
        "k-closest": KClosestPolicy(),
    }

    for m in sample_sizes:
        sums: Dict[str, float] = {label: 0.0 for label in list(heuristics) + ["BR", "BRtp"]}
        for _trial in range(int(trials)):
            sample = random_sample(existing, m, rng=rng)
            # Heuristics restricted to the random sample.
            for label, policy in heuristics.items():
                chosen = policy.select(
                    newcomer,
                    k,
                    metric,
                    residual,
                    candidates=sample,
                    rng=rng,
                    destinations=sample,
                )
                sums[label] += _newcomer_cost(
                    metric, residual, newcomer, sorted(chosen), existing
                )
            # BR with random sampling.
            br_random = sampled_best_response(
                newcomer, metric, residual, k, sample, rng=rng
            )
            sums["BR"] += _newcomer_cost(
                metric, residual, newcomer, sorted(br_random.neighbors), existing
            )
            # BR with topology-based biased sampling.
            biased = topology_biased_sample(
                newcomer,
                metric,
                residual,
                m,
                oversample=oversample,
                radius=radius,
                candidates=existing,
                rng=rng,
            )
            br_biased = sampled_best_response(
                newcomer, metric, residual, k, biased, rng=rng
            )
            sums["BRtp"] += _newcomer_cost(
                metric, residual, newcomer, sorted(br_biased.neighbors), existing
            )
        for label, total in sums.items():
            mean_cost = total / trials
            result.add_point(label, m, mean_cost / reference_cost)
    return result


_SAMPLING_EXPERIMENTS = {
    "fig5-sampling-br": ("best-response", "Fig. 5: newcomer cost vs sample size on a BR graph"),
    "fig6-sampling-random": ("k-random", "Fig. 6: sampling on a k-Random graph"),
    "fig7-sampling-regular": ("k-regular", "Fig. 7: sampling on a k-Regular graph"),
    "fig8-sampling-closest": ("k-closest", "Fig. 8: sampling on a k-Closest graph"),
}


def _sampling_spec(
    experiment: str,
    base_policy: str,
    n: int,
    k: int,
    seed: SeedLike,
    **params,
) -> "ScenarioSpec":
    from repro.scenario.spec import ScenarioSpec, coerce_seed

    return ScenarioSpec(
        experiment=experiment,
        n=int(n),
        k_grid=(int(k),),
        policies=(base_policy,),
        metric="delay-true",
        seed=coerce_seed(seed),
        params={"base_policy": base_policy, "k": int(k), **params},
    )


def fig5_to_8_sampling(
    base_policy: str = "best-response",
    *,
    n: int = 295,
    k: int = 3,
    radius: int = 2,
    sample_sizes: Sequence[int] = DEFAULT_SAMPLE_SIZES,
    trials: int = 5,
    seed: SeedLike = 0,
    oversample: int = 3,
) -> ExperimentResult:
    """Thin scenario front door for the Figs. 5-8 sampling experiments.

    See :func:`_sampling_experiment` for parameter semantics; this
    constructs the matching :class:`~repro.scenario.spec.ScenarioSpec`
    and runs it through a session.
    """
    from repro.scenario.session import SimulationSession

    experiment = {
        policy: name for name, (policy, _help) in _SAMPLING_EXPERIMENTS.items()
    }.get(base_policy, "fig5-sampling-br")
    spec = _sampling_spec(
        experiment,
        base_policy,
        n,
        k,
        seed,
        radius=int(radius),
        sample_sizes=[int(m) for m in sample_sizes],
        trials=int(trials),
        oversample=int(oversample),
    )
    return SimulationSession(spec).run()


def _register() -> None:
    from repro.scenario.registry import register_scenario

    for name, (policy, help_text) in _SAMPLING_EXPERIMENTS.items():
        def default_spec(name=name, policy=policy):
            return _sampling_spec(name, policy, 295, 3, 2008)

        register_scenario(
            name,
            help=help_text,
            default_spec=default_spec,
            runner=_run_sampling,
            smoke_args=(
                "--n", "24", "--k", "2", "--trials", "1",
                "--param", "sample_sizes=4,6",
            ),
        )


_register()
