"""Figure 3: re-wiring dynamics and the BR(ε) trade-off.

Left panel: total re-wirings per epoch over time (the rate drops quickly
as EGOIST reaches steady state; larger k re-wires more).  Center/right
panels: normalised cost (BR cost / full-mesh cost) against the re-wiring
rate for exact BR and for BR(ε = 10%).

Both panels are epoch-loop scenarios driven through
:class:`~repro.core.engine_batch.EngineBatch`: one engine deployment per
k (left) or per (k, ε) pair (center/right), advanced in lockstep with
shared residual route-value sweeps and fused re-wiring scoring.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.cost import DelayMetric
from repro.core.engine_batch import EngineSpec
from repro.core.policies import BestResponsePolicy, FullMeshPolicy, build_overlay
from repro.core.providers import DelayMetricProvider
from repro.experiments.harness import ExperimentResult
from repro.netsim.planetlab import synthetic_planetlab
from repro.scenario.registry import register_scenario
from repro.scenario.session import SimulationSession
from repro.scenario.spec import ScenarioSpec, coerce_seed
from repro.util.rng import SeedLike, as_generator

DEFAULT_K_VALUES = (2, 3, 4, 5, 8)


def _run_fig3_rewirings(session: SimulationSession) -> ExperimentResult:
    spec = session.spec
    rng = as_generator(spec.seed)
    space, _nodes = synthetic_planetlab(spec.n, seed=rng)
    result = ExperimentResult(
        figure="fig3-left",
        description="Total re-wirings per epoch over time (delay via ping)",
        x_label="epoch",
        y_label="re-wirings per epoch",
        metadata={"n": spec.n, "drift_relative_std": spec.drift_relative_std},
    )
    def build(k, stream):
        provider = DelayMetricProvider(
            space,
            estimator="ping",
            drift_relative_std=spec.drift_relative_std,
            seed=stream,
        )
        return EngineSpec(
            label=f"k={k}",
            provider=provider,
            policy=BestResponsePolicy(),
            k=int(k),
            epoch_length=spec.epoch_length,
            announce_interval=spec.announce_interval,
            seed=stream,
        )

    histories = session.engine_sweep(session.engine_grid(spec.k_grid, rng, build))
    for k, history in zip(spec.k_grid, histories):
        for epoch, count in enumerate(history.rewirings_per_epoch()):
            result.add_point(f"k={k}", epoch, count)
    return result


def _run_fig3_epsilon(session: SimulationSession) -> ExperimentResult:
    spec = session.spec
    # The spec's epsilon is authoritative (the registered default carries
    # the paper's 0.1); epsilon = 0 legitimately compares BR with itself.
    epsilon = spec.epsilon
    rng = as_generator(spec.seed)
    space, _nodes = synthetic_planetlab(spec.n, seed=rng)
    truth = DelayMetric(space.matrix)
    # Full-mesh reference cost (k = n - 1).
    full_mesh = build_overlay(FullMeshPolicy(), truth, spec.n - 1, rng=rng)
    full_costs = truth.all_node_costs(full_mesh.to_graph())
    full_mean = float(np.mean(list(full_costs.values())))

    result = ExperimentResult(
        figure="fig3-center-right",
        description="Cost normalized by full mesh and re-wirings per epoch: BR vs BR(eps)",
        x_label="k",
        y_label="normalized cost / re-wirings per epoch",
        metadata={"n": spec.n, "epsilon": epsilon, "full_mesh_mean_cost": full_mean},
    )
    variants = (("BR", 0.0), (f"BR({epsilon:g})", epsilon))
    cells = [(k, label, eps) for k in spec.k_grid for label, eps in variants]

    def build(cell, stream):
        k, label, eps = cell
        provider = DelayMetricProvider(
            space,
            estimator="ping",
            drift_relative_std=spec.drift_relative_std,
            seed=stream,
        )
        return EngineSpec(
            label=f"{label}@k={k}",
            provider=provider,
            policy=BestResponsePolicy(),
            k=int(k),
            epoch_length=spec.epoch_length,
            announce_interval=spec.announce_interval,
            epsilon=eps,
            seed=stream,
        )

    histories = session.engine_sweep(session.engine_grid(cells, rng, build))
    warmup = float(spec.param("warmup_fraction", 0.4))
    for (k, label, _eps), history in zip(cells, histories):
        steady_cost = history.steady_state_mean_cost(warmup_fraction=warmup)
        # Ignore the first epoch (initial wiring counts as n re-wirings).
        rewires = history.rewirings_per_epoch()[1:]
        mean_rewires = float(np.mean(rewires)) if rewires else 0.0
        result.add_point(f"{label} cost/full mesh", k, steady_cost / full_mean)
        result.add_point(f"{label} re-wirings", k, mean_rewires)
    return result


def _fig3_rewirings_spec(
    n: int, k_values: Sequence[int], epochs: int, drift: float, seed: SeedLike
) -> ScenarioSpec:
    return ScenarioSpec(
        experiment="fig3-rewirings",
        n=int(n),
        k_grid=tuple(int(k) for k in k_values),
        policies=("best-response",),
        metric="delay-ping",
        epochs=int(epochs),
        drift_relative_std=float(drift),
        seed=coerce_seed(seed),
    )


def fig3_rewirings_over_time(
    n: int = 50,
    k_values: Sequence[int] = DEFAULT_K_VALUES,
    *,
    epochs: int = 20,
    drift_relative_std: float = 0.02,
    seed: SeedLike = 0,
    batched: bool = True,
) -> ExperimentResult:
    """Fig. 3 left: total re-wirings per epoch over time, per k."""
    spec = _fig3_rewirings_spec(n, k_values, epochs, drift_relative_std, seed)
    return SimulationSession(spec, batched=batched).run()


def _fig3_epsilon_spec(
    n: int,
    k_values: Sequence[int],
    epsilon: float,
    epochs: int,
    drift: float,
    seed: SeedLike,
) -> ScenarioSpec:
    return ScenarioSpec(
        experiment="fig3-epsilon",
        n=int(n),
        k_grid=tuple(int(k) for k in k_values),
        policies=("best-response",),
        metric="delay-ping",
        epochs=int(epochs),
        epsilon=float(epsilon),
        drift_relative_std=float(drift),
        seed=coerce_seed(seed),
    )


def fig3_epsilon_comparison(
    n: int = 50,
    k_values: Sequence[int] = (2, 3, 4, 5, 6, 7, 8),
    *,
    epsilon: float = 0.1,
    epochs: int = 10,
    drift_relative_std: float = 0.02,
    seed: SeedLike = 0,
    batched: bool = True,
) -> ExperimentResult:
    """Fig. 3 center/right: cost vs full mesh and re-wiring rate, BR vs BR(ε).

    Series produced (per k):

    * ``BR cost / full mesh`` and ``BR re-wirings``
    * ``BR(eps) cost / full mesh`` and ``BR(eps) re-wirings``
    """
    spec = _fig3_epsilon_spec(n, k_values, epsilon, epochs, drift_relative_std, seed)
    return SimulationSession(spec, batched=batched).run()


register_scenario(
    "fig3-rewirings",
    help="Fig. 3 left: re-wirings per epoch over time",
    default_spec=lambda: _fig3_rewirings_spec(50, DEFAULT_K_VALUES, 10, 0.02, 2008),
    runner=_run_fig3_rewirings,
    smoke_args=("--n", "10", "--k", "2", "--epochs", "2"),
)

register_scenario(
    "fig3-epsilon",
    help="Fig. 3 center/right: BR vs BR(eps=0.1)",
    default_spec=lambda: _fig3_epsilon_spec(
        50, (2, 3, 4, 5, 6, 7, 8), 0.1, 10, 0.02, 2008
    ),
    runner=_run_fig3_epsilon,
    smoke_args=("--n", "10", "--k", "2", "--epochs", "2"),
)
