"""Figure 3: re-wiring dynamics and the BR(ε) trade-off.

Left panel: total re-wirings per epoch over time (the rate drops quickly
as EGOIST reaches steady state; larger k re-wires more).  Center/right
panels: normalised cost (BR cost / full-mesh cost) against the re-wiring
rate for exact BR and for BR(ε = 10%).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.cost import DelayMetric
from repro.core.engine import EgoistEngine
from repro.core.policies import BestResponsePolicy, FullMeshPolicy, build_overlay
from repro.core.providers import DelayMetricProvider
from repro.experiments.harness import ExperimentResult
from repro.netsim.planetlab import synthetic_planetlab
from repro.util.rng import SeedLike, as_generator

DEFAULT_K_VALUES = (2, 3, 4, 5, 8)


def fig3_rewirings_over_time(
    n: int = 50,
    k_values: Sequence[int] = DEFAULT_K_VALUES,
    *,
    epochs: int = 20,
    drift_relative_std: float = 0.02,
    seed: SeedLike = 0,
) -> ExperimentResult:
    """Fig. 3 left: total re-wirings per epoch over time, per k."""
    rng = as_generator(seed)
    space, _nodes = synthetic_planetlab(n, seed=rng)
    result = ExperimentResult(
        figure="fig3-left",
        description="Total re-wirings per epoch over time (delay via ping)",
        x_label="epoch",
        y_label="re-wirings per epoch",
        metadata={"n": n, "drift_relative_std": drift_relative_std},
    )
    for k in k_values:
        provider = DelayMetricProvider(
            space,
            estimator="ping",
            drift_relative_std=drift_relative_std,
            seed=rng,
        )
        engine = EgoistEngine(provider, BestResponsePolicy(), k, seed=rng)
        history = engine.run(epochs)
        for epoch, count in enumerate(history.rewirings_per_epoch()):
            result.add_point(f"k={k}", epoch, count)
    return result


def fig3_epsilon_comparison(
    n: int = 50,
    k_values: Sequence[int] = (2, 3, 4, 5, 6, 7, 8),
    *,
    epsilon: float = 0.1,
    epochs: int = 10,
    drift_relative_std: float = 0.02,
    seed: SeedLike = 0,
) -> ExperimentResult:
    """Fig. 3 center/right: cost vs full mesh and re-wiring rate, BR vs BR(ε).

    Series produced (per k):

    * ``BR cost / full mesh`` and ``BR re-wirings``
    * ``BR(eps) cost / full mesh`` and ``BR(eps) re-wirings``
    """
    rng = as_generator(seed)
    space, _nodes = synthetic_planetlab(n, seed=rng)
    truth = DelayMetric(space.matrix)
    # Full-mesh reference cost (k = n - 1).
    full_mesh = build_overlay(FullMeshPolicy(), truth, n - 1, rng=rng)
    full_costs = truth.all_node_costs(full_mesh.to_graph())
    full_mean = float(np.mean(list(full_costs.values())))

    result = ExperimentResult(
        figure="fig3-center-right",
        description="Cost normalized by full mesh and re-wirings per epoch: BR vs BR(eps)",
        x_label="k",
        y_label="normalized cost / re-wirings per epoch",
        metadata={"n": n, "epsilon": epsilon, "full_mesh_mean_cost": full_mean},
    )
    for k in k_values:
        for label, eps in (("BR", 0.0), (f"BR({epsilon:g})", epsilon)):
            provider = DelayMetricProvider(
                space,
                estimator="ping",
                drift_relative_std=drift_relative_std,
                seed=rng,
            )
            engine = EgoistEngine(
                provider, BestResponsePolicy(), k, epsilon=eps, seed=rng
            )
            history = engine.run(epochs)
            steady_cost = history.steady_state_mean_cost(warmup_fraction=0.4)
            # Ignore the first epoch (initial wiring counts as n re-wirings).
            rewires = history.rewirings_per_epoch()[1:]
            mean_rewires = float(np.mean(rewires)) if rewires else 0.0
            result.add_point(f"{label} cost/full mesh", k, steady_cost / full_mean)
            result.add_point(f"{label} re-wirings", k, mean_rewires)
    return result
