"""Ablation A3: the effect of preference skew on BR's advantage.

The paper evaluates everything under uniform routing preferences and notes
(footnote 8) that this is *conservative* for Best-Response: "unlike the
other policies we considered, BR is capable of leveraging skew in
preference to its advantage".  This ablation quantifies that claim by
sweeping a Zipf exponent over the preference matrix and measuring the
heuristics' cost relative to BR under each skew level.

The (exponent, policy) grid is one build-only scenario: all deployments
share the underlay and build in lockstep through
:class:`~repro.core.deployment_batch.DeploymentBatch`, with each
exponent's Zipf preference matrix riding on its deployments.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.core.cost import DelayMetric, zipf_preferences
from repro.core.deployment_batch import DeploymentSpec
from repro.experiments.harness import ExperimentResult, normalize_against
from repro.netsim.planetlab import synthetic_planetlab
from repro.scenario.registry import register_scenario
from repro.scenario.session import SimulationSession
from repro.scenario.spec import ScenarioSpec, coerce_seed
from repro.util.rng import SeedLike, as_generator

DEFAULT_EXPONENTS = (0.0, 0.5, 1.0, 1.5)


def _run_preferences(session: SimulationSession) -> ExperimentResult:
    spec = session.spec
    k = int(spec.param("k", spec.k_grid[0]))
    exponents = [float(e) for e in spec.param("exponents", DEFAULT_EXPONENTS)]
    rng = as_generator(spec.seed)
    space, _nodes = synthetic_planetlab(spec.n, seed=rng)
    metric = DelayMetric(space.matrix)
    policies = session.policy_map()
    result = ExperimentResult(
        figure="ablation-preferences",
        description="Policy cost / BR cost as routing-preference skew (Zipf exponent) grows",
        x_label="zipf exponent",
        y_label="mean cost / BR cost",
        metadata={"n": spec.n, "k": k},
    )
    # Draw every preference matrix from the master stream first, then one
    # spawned stream per deployment, so the grid builds in lockstep.
    preference_of = {
        exponent: (
            None
            if exponent == 0.0
            else zipf_preferences(spec.n, exponent=exponent, seed=rng)
        )
        for exponent in exponents
    }
    cells = [(exponent, name) for exponent in exponents for name in policies]

    def build(cell):
        exponent, name = cell
        return DeploymentSpec(
            label=f"{name}@{exponent:g}",
            policy=policies[name],
            k=k,
            announced=metric,
            truth=metric,
            br_rounds=spec.br_rounds,
            preferences=preference_of[exponent],
        )

    means = session.deployment_means(session.deployment_grid(cells, rng, build))
    labels = list(policies)
    for index, exponent in enumerate(exponents):
        base = index * len(labels)
        raw: Dict[str, float] = {
            label: float(means[base + offset])
            for offset, label in enumerate(labels)
        }
        normalized = normalize_against(raw, "best-response")
        for name, value in normalized.items():
            result.add_point(name, exponent, value)
    return result


def _preferences_spec(
    n: int,
    exponents: Sequence[float],
    k: int,
    seed: SeedLike,
    br_rounds: int,
) -> ScenarioSpec:
    return ScenarioSpec(
        experiment="ablation-preferences",
        n=int(n),
        k_grid=(int(k),),
        policies=("k-random", "k-regular", "k-closest", "best-response"),
        metric="delay-true",
        br_rounds=int(br_rounds),
        seed=coerce_seed(seed),
        params={"exponents": [float(e) for e in exponents], "k": int(k)},
    )


def preference_skew_ablation(
    n: int = 40,
    exponents: Sequence[float] = DEFAULT_EXPONENTS,
    *,
    k: int = 3,
    seed: SeedLike = 0,
    br_rounds: int = 3,
    batched: bool = True,
) -> ExperimentResult:
    """Cost of each policy (normalised by BR) as preference skew grows.

    An exponent of 0 reproduces the paper's uniform-preference setting;
    larger exponents concentrate each node's traffic on a few popular
    destinations, which BR can exploit but the oblivious policies cannot.
    """
    spec = _preferences_spec(n, exponents, k, seed, br_rounds)
    return SimulationSession(spec, batched=batched).run()


register_scenario(
    "ablation-preferences",
    help="Ablation: BR's advantage under skewed routing preferences",
    default_spec=lambda: _preferences_spec(40, DEFAULT_EXPONENTS, 3, 2008, 3),
    runner=_run_preferences,
    smoke_args=("--n", "12", "--k", "3", "--br-rounds", "1", "--param", "exponents=0.0,1.0"),
)
