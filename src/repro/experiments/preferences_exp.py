"""Ablation A3: the effect of preference skew on BR's advantage.

The paper evaluates everything under uniform routing preferences and notes
(footnote 8) that this is *conservative* for Best-Response: "unlike the
other policies we considered, BR is capable of leveraging skew in
preference to its advantage".  This ablation quantifies that claim by
sweeping a Zipf exponent over the preference matrix and measuring the
heuristics' cost relative to BR under each skew level.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.core.cost import DelayMetric, uniform_preferences, zipf_preferences
from repro.core.policies import (
    BestResponsePolicy,
    KClosestPolicy,
    KRandomPolicy,
    KRegularPolicy,
    NeighborSelectionPolicy,
    build_overlay,
)
from repro.experiments.harness import ExperimentResult, normalize_against
from repro.netsim.planetlab import synthetic_planetlab
from repro.util.rng import SeedLike, as_generator

DEFAULT_EXPONENTS = (0.0, 0.5, 1.0, 1.5)


def preference_skew_ablation(
    n: int = 40,
    exponents: Sequence[float] = DEFAULT_EXPONENTS,
    *,
    k: int = 3,
    seed: SeedLike = 0,
    br_rounds: int = 3,
) -> ExperimentResult:
    """Cost of each policy (normalised by BR) as preference skew grows.

    An exponent of 0 reproduces the paper's uniform-preference setting;
    larger exponents concentrate each node's traffic on a few popular
    destinations, which BR can exploit but the oblivious policies cannot.
    """
    rng = as_generator(seed)
    space, _nodes = synthetic_planetlab(n, seed=rng)
    metric = DelayMetric(space.matrix)
    policies: Dict[str, NeighborSelectionPolicy] = {
        "k-random": KRandomPolicy(),
        "k-regular": KRegularPolicy(),
        "k-closest": KClosestPolicy(),
        "best-response": BestResponsePolicy(),
    }
    result = ExperimentResult(
        figure="ablation-preferences",
        description="Policy cost / BR cost as routing-preference skew (Zipf exponent) grows",
        x_label="zipf exponent",
        y_label="mean cost / BR cost",
        metadata={"n": n, "k": k},
    )
    for exponent in exponents:
        if exponent == 0.0:
            preferences = uniform_preferences(n)
        else:
            preferences = zipf_preferences(n, exponent=exponent, seed=rng)
        raw: Dict[str, float] = {}
        for name, policy in policies.items():
            wiring = build_overlay(
                policy,
                metric,
                k,
                preferences=preferences,
                rng=rng,
                br_rounds=br_rounds,
            )
            costs = metric.all_node_costs(wiring.to_graph(), preferences)
            raw[name] = float(np.mean(list(costs.values())))
        normalized = normalize_against(raw, "best-response")
        for name, value in normalized.items():
            result.add_point(name, exponent, value)
    return result
