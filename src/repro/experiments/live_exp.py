"""The live-overlay scenario shape: the workload ``repro serve`` hosts.

Not a paper figure — the serving counterpart of the epoch-loop
experiments: one engine deployment per (policy, k) cell of the spec,
advanced through the explicit lifecycle API
(:class:`repro.scenario.lifecycle.Session`).  Registered like any other
experiment so ``repro run live-overlay`` exercises the exact planner the
service schedules, and so serve specs (``scenarios/serve_smoke.json``)
validate through the ordinary spec tooling.
"""

from __future__ import annotations

from repro.experiments.harness import ExperimentResult
from repro.scenario.lifecycle import Session
from repro.scenario.registry import register_scenario
from repro.scenario.session import SimulationSession
from repro.scenario.spec import ScenarioSpec


def _run_live_overlay(session: SimulationSession) -> ExperimentResult:
    spec = session.spec
    live = Session.from_session(session)
    result = ExperimentResult(
        figure="live-overlay",
        description="Epoch trajectory of the live-served overlay deployments",
        x_label="epoch",
        y_label="mean cost",
        metadata={"n": spec.n, "deployments": list(live.labels)},
    )
    for _ in range(max(1, spec.epochs)):
        live.step()
    histories = live.close()
    for label, history in zip(live.labels, histories):
        for epoch, cost in enumerate(history.mean_costs()):
            result.add_point(label, epoch, cost)
    return result


def _default_spec() -> ScenarioSpec:
    return ScenarioSpec(
        experiment="live-overlay",
        n=32,
        k_grid=(4,),
        policies=("best-response",),
        metric="delay-ping",
        epochs=5,
        seed=2008,
    )


register_scenario(
    "live-overlay",
    help="Live service workload: (policy, k) deployments stepped via the lifecycle API",
    default_spec=_default_spec,
    runner=_run_live_overlay,
    smoke_args=("--n", "10", "--k", "2", "--epochs", "2"),
)
