"""Figure 2: performance under churn.

Left panel: node efficiency (normalised by BR's) as a function of k under
trace-driven churn.  Right panel: efficiency as a function of the churn
rate for k = 5, where at sufficiently high churn HybridBR overtakes plain
BR (the crossover the paper highlights).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.churn.models import ChurnSchedule, parametrized_churn, trace_driven_churn
from repro.core.engine import EgoistEngine
from repro.core.hybrid import HybridBRPolicy
from repro.core.policies import (
    BestResponsePolicy,
    KClosestPolicy,
    KRandomPolicy,
    KRegularPolicy,
    NeighborSelectionPolicy,
)
from repro.core.providers import DelayMetricProvider
from repro.experiments.harness import ExperimentResult, normalize_against
from repro.netsim.planetlab import synthetic_planetlab
from repro.util.rng import SeedLike, as_generator

DEFAULT_K_VALUES = (3, 4, 5, 6, 7, 8)
DEFAULT_CHURN_RATES = (1e-5, 1e-4, 1e-3, 1e-2, 1e-1)


def _churn_policies(k2: int = 2) -> Dict[str, NeighborSelectionPolicy]:
    return {
        "k-random": KRandomPolicy(),
        "k-regular": KRegularPolicy(),
        "k-closest": KClosestPolicy(),
        "best-response": BestResponsePolicy(),
        "hybrid-br": HybridBRPolicy(k2=k2),
    }


def _steady_state_efficiency(
    policy: NeighborSelectionPolicy,
    provider_factory,
    churn: ChurnSchedule,
    k: int,
    *,
    epochs: int,
    seed: SeedLike,
) -> float:
    """Run the engine under churn and return the steady-state efficiency."""
    engine = EgoistEngine(
        provider_factory(),
        policy,
        k,
        churn=churn,
        compute_efficiency=True,
        seed=seed,
    )
    history = engine.run(epochs)
    return history.steady_state_efficiency(warmup_fraction=0.3)


def fig2_efficiency_vs_k(
    n: int = 50,
    k_values: Sequence[int] = DEFAULT_K_VALUES,
    *,
    seed: SeedLike = 0,
    epochs: int = 12,
    horizon: float = 12 * 60.0,
    mean_on: float = 1500.0,
    mean_off: float = 300.0,
    k2: int = 2,
) -> ExperimentResult:
    """Fig. 2 left: efficiency / BR efficiency vs k under trace-driven churn."""
    rng = as_generator(seed)
    space, _nodes = synthetic_planetlab(n, seed=rng)
    churn = trace_driven_churn(
        n, horizon, mean_on=mean_on, mean_off=mean_off, seed=rng
    )
    result = ExperimentResult(
        figure="fig2-left",
        description="Node efficiency under trace-driven churn, normalized by BR",
        x_label="k",
        y_label="node efficiency / BR efficiency",
        metadata={"n": n, "churn_rate": churn.churn_rate()},
    )

    def provider_factory():
        return DelayMetricProvider(space, estimator="true", seed=rng)

    for k in k_values:
        raw: Dict[str, float] = {}
        for name, policy in _churn_policies(k2).items():
            raw[name] = _steady_state_efficiency(
                policy, provider_factory, churn, k, epochs=epochs, seed=rng
            )
        normalized = normalize_against(raw, "best-response")
        for name, value in normalized.items():
            result.add_point(name, k, value)
        for name, value in raw.items():
            result.add_point(f"{name} (raw)", k, value)
    return result


def fig2_churn_rate_sweep(
    n: int = 50,
    churn_rates: Sequence[float] = DEFAULT_CHURN_RATES,
    *,
    k: int = 5,
    seed: SeedLike = 0,
    epochs: int = 12,
    horizon: float = 12 * 60.0,
    k2: int = 2,
) -> ExperimentResult:
    """Fig. 2 right: efficiency vs churn rate at k = 5 (HybridBR crossover)."""
    rng = as_generator(seed)
    space, _nodes = synthetic_planetlab(n, seed=rng)
    result = ExperimentResult(
        figure="fig2-right",
        description="Node efficiency vs churn rate (k=5), normalized by BR",
        x_label="churn rate",
        y_label="node efficiency / BR efficiency",
        metadata={"n": n, "k": k},
    )

    def provider_factory():
        return DelayMetricProvider(space, estimator="true", seed=rng)

    for rate in churn_rates:
        churn = parametrized_churn(n, horizon, rate, seed=rng)
        raw: Dict[str, float] = {}
        for name, policy in _churn_policies(k2).items():
            raw[name] = _steady_state_efficiency(
                policy, provider_factory, churn, k, epochs=epochs, seed=rng
            )
        normalized = normalize_against(raw, "best-response")
        for name, value in normalized.items():
            result.add_point(name, rate, value)
        for name, value in raw.items():
            result.add_point(f"{name} (raw)", rate, value)
        result.metadata[f"realised_churn@{rate:g}"] = churn.churn_rate()
    return result
