"""Figure 2: performance under churn.

Left panel: node efficiency (normalised by BR's) as a function of k under
trace-driven churn.  Right panel: efficiency as a function of the churn
rate for k = 5, where at sufficiently high churn HybridBR overtakes plain
BR (the crossover the paper highlights).

Both panels are epoch-loop scenarios: every (policy, k) — or (policy,
churn-rate) — pair is one engine deployment, and the whole grid advances
in lockstep through :class:`~repro.core.engine_batch.EngineBatch`
(``batched=True`` shares the residual route-value sweeps and fuses the
re-wiring scoring across deployments; ``batched=False`` preserves the
sequential engine byte-for-byte).  Dynamic membership rides the same
fused path: churned-down engines take the masked (padded) re-wiring
broadcasts, join/leave events between epochs only re-derive each
engine's active mask, and the per-engine route caches absorb re-wires
and membership deltas through the incremental repair kernels instead of
full invalidations — the results' ``metadata["cache"]`` records the
aggregate hit/miss/repair counters (``repro run --verbose`` prints
them), which is how cache effectiveness under churn is tracked.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.engine_batch import EngineSpec
from repro.core.providers import DelayMetricProvider
from repro.experiments.harness import ExperimentResult, add_normalized_sweep
from repro.netsim.planetlab import synthetic_planetlab
from repro.scenario.registry import register_scenario
from repro.scenario.session import SimulationSession
from repro.scenario.spec import ChurnSpec, ScenarioSpec, coerce_seed
from repro.util.rng import SeedLike, as_generator
from repro.util.validation import ValidationError

DEFAULT_K_VALUES = (3, 4, 5, 6, 7, 8)
DEFAULT_CHURN_RATES = (1e-5, 1e-4, 1e-3, 1e-2, 1e-1)

#: The policy set of both panels (HybridBR's k2 rides in the descriptor).
_CHURN_POLICIES = (
    "k-random",
    "k-regular",
    "k-closest",
    "best-response",
    "hybrid-br(k2=2)",
)


def _run_fig2_left(session: SimulationSession) -> ExperimentResult:
    spec = session.spec
    rng = as_generator(spec.seed)
    space, _nodes = synthetic_planetlab(spec.n, seed=rng)
    churn = session.churn_schedule(rng)
    if churn is None:
        raise ValidationError(
            "fig2-efficiency-vs-k needs a churn spec (e.g. ChurnSpec(kind='trace'))"
        )
    result = ExperimentResult(
        figure="fig2-left",
        description="Node efficiency under trace-driven churn, normalized by BR",
        x_label="k",
        y_label="node efficiency / BR efficiency",
        metadata={"n": spec.n, "churn_rate": churn.churn_rate()},
    )
    policies = session.policy_map()
    cells = [(k, label, policy) for k in spec.k_grid for label, policy in policies.items()]

    def build(cell, stream):
        k, label, policy = cell
        return EngineSpec(
            label=f"{label}@k={k}",
            provider=DelayMetricProvider(space, estimator="true", seed=stream),
            policy=policy,
            k=int(k),
            epoch_length=spec.epoch_length,
            announce_interval=spec.announce_interval,
            churn=churn,
            epsilon=spec.epsilon,
            compute_efficiency=True,
            seed=stream,
        )

    histories = session.engine_sweep(session.engine_grid(cells, rng, build))
    warmup = float(spec.param("warmup_fraction", 0.3))
    labels = list(policies)
    for index, k in enumerate(spec.k_grid):
        base = index * len(labels)
        raw: Dict[str, float] = {
            label: histories[base + offset].steady_state_efficiency(
                warmup_fraction=warmup
            )
            for offset, label in enumerate(labels)
        }
        add_normalized_sweep(result, k, raw, "best-response")
    return result


def _run_fig2_right(session: SimulationSession) -> ExperimentResult:
    spec = session.spec
    if spec.churn is None:
        raise ValidationError(
            "fig2-churn-rate needs a churn spec (ChurnSpec(kind='parametrized'))"
        )
    rng = as_generator(spec.seed)
    space, _nodes = synthetic_planetlab(spec.n, seed=rng)
    k = int(spec.param("k", spec.k_grid[0]))
    result = ExperimentResult(
        figure="fig2-right",
        description=f"Node efficiency vs churn rate (k={k}), normalized by BR",
        x_label="churn rate",
        y_label="node efficiency / BR efficiency",
        metadata={"n": spec.n, "k": k},
    )
    rates = [float(rate) for rate in spec.param("churn_rates", DEFAULT_CHURN_RATES)]
    # Generate every schedule from the master stream first, then spawn the
    # per-deployment streams, so adding a policy never reshuffles churn.
    schedules = [session.churn_schedule(rng, rate=rate) for rate in rates]
    policies = session.policy_map()
    cells = [
        (rate, churn, label, policy)
        for rate, churn in zip(rates, schedules)
        for label, policy in policies.items()
    ]

    def build(cell, stream):
        rate, churn, label, policy = cell
        return EngineSpec(
            label=f"{label}@{rate:g}",
            provider=DelayMetricProvider(space, estimator="true", seed=stream),
            policy=policy,
            k=k,
            epoch_length=spec.epoch_length,
            announce_interval=spec.announce_interval,
            churn=churn,
            epsilon=spec.epsilon,
            compute_efficiency=True,
            seed=stream,
        )

    histories = session.engine_sweep(session.engine_grid(cells, rng, build))
    warmup = float(spec.param("warmup_fraction", 0.3))
    labels = list(policies)
    for index, (rate, churn) in enumerate(zip(rates, schedules)):
        base = index * len(labels)
        raw: Dict[str, float] = {
            label: histories[base + offset].steady_state_efficiency(
                warmup_fraction=warmup
            )
            for offset, label in enumerate(labels)
        }
        add_normalized_sweep(result, rate, raw, "best-response")
        result.metadata[f"realised_churn@{rate:g}"] = churn.churn_rate()
    return result


def _fig2_left_spec(
    n: int,
    k_values: Sequence[int],
    seed: SeedLike,
    epochs: int,
    horizon: float,
    mean_on: float,
    mean_off: float,
    k2: int,
) -> ScenarioSpec:
    policies = tuple(
        f"hybrid-br(k2={int(k2)})" if p.startswith("hybrid-br") else p
        for p in _CHURN_POLICIES
    )
    return ScenarioSpec(
        experiment="fig2-efficiency-vs-k",
        n=int(n),
        k_grid=tuple(int(k) for k in k_values),
        policies=policies,
        metric="delay-true",
        epochs=int(epochs),
        churn=ChurnSpec(
            kind="trace", horizon=float(horizon), mean_on=float(mean_on),
            mean_off=float(mean_off),
        ),
        compute_efficiency=True,
        seed=coerce_seed(seed),
    )


def fig2_efficiency_vs_k(
    n: int = 50,
    k_values: Sequence[int] = DEFAULT_K_VALUES,
    *,
    seed: SeedLike = 0,
    epochs: int = 12,
    horizon: float = 12 * 60.0,
    mean_on: float = 1500.0,
    mean_off: float = 300.0,
    k2: int = 2,
    batched: bool = True,
) -> ExperimentResult:
    """Fig. 2 left: efficiency / BR efficiency vs k under trace-driven churn."""
    spec = _fig2_left_spec(n, k_values, seed, epochs, horizon, mean_on, mean_off, k2)
    return SimulationSession(spec, batched=batched).run()


def _fig2_right_spec(
    n: int,
    churn_rates: Sequence[float],
    k: int,
    seed: SeedLike,
    epochs: int,
    horizon: float,
    k2: int,
) -> ScenarioSpec:
    policies = tuple(
        f"hybrid-br(k2={int(k2)})" if p.startswith("hybrid-br") else p
        for p in _CHURN_POLICIES
    )
    return ScenarioSpec(
        experiment="fig2-churn-rate",
        n=int(n),
        k_grid=(int(k),),
        policies=policies,
        metric="delay-true",
        epochs=int(epochs),
        churn=ChurnSpec(kind="parametrized", horizon=float(horizon)),
        compute_efficiency=True,
        seed=coerce_seed(seed),
        params={"churn_rates": [float(rate) for rate in churn_rates], "k": int(k)},
    )


def fig2_churn_rate_sweep(
    n: int = 50,
    churn_rates: Sequence[float] = DEFAULT_CHURN_RATES,
    *,
    k: int = 5,
    seed: SeedLike = 0,
    epochs: int = 12,
    horizon: float = 12 * 60.0,
    k2: int = 2,
    batched: bool = True,
) -> ExperimentResult:
    """Fig. 2 right: efficiency vs churn rate at k = 5 (HybridBR crossover)."""
    spec = _fig2_right_spec(n, churn_rates, k, seed, epochs, horizon, k2)
    return SimulationSession(spec, batched=batched).run()


register_scenario(
    "fig2-efficiency-vs-k",
    help="Fig. 2 left: efficiency under trace-driven churn vs k",
    default_spec=lambda: _fig2_left_spec(
        50, DEFAULT_K_VALUES, 2008, 10, 10 * 60.0, 1500.0, 300.0, 2
    ),
    runner=_run_fig2_left,
    smoke_args=("--n", "10", "--k", "3", "--epochs", "2"),
)

register_scenario(
    "fig2-churn-rate",
    help="Fig. 2 right: efficiency vs churn rate at fixed k",
    default_spec=lambda: _fig2_right_spec(
        50, DEFAULT_CHURN_RATES, 5, 2008, 10, 10 * 60.0, 2
    ),
    runner=_run_fig2_right,
    smoke_args=("--n", "10", "--k", "3", "--epochs", "2", "--churn-rates", "0.01"),
)
