"""Figure-level experiment drivers.

Every figure of the paper's evaluation has a driver here that generates
the workload, runs the relevant policies, and returns the series the
figure plots.  The benchmark harness (``benchmarks/``) and the examples
(``examples/``) are thin wrappers around these drivers, so the numbers in
EXPERIMENTS.md can be regenerated from a single place.
"""

from repro.experiments.harness import ExperimentResult, Series
from repro.experiments.baseline import (
    fig1_bandwidth,
    fig1_delay_ping,
    fig1_delay_pyxida,
    fig1_node_load,
)
from repro.experiments.churn_exp import fig2_churn_rate_sweep, fig2_efficiency_vs_k
from repro.experiments.failures_exp import failures_resilience
from repro.experiments.rewiring import fig3_epsilon_comparison, fig3_rewirings_over_time
from repro.experiments.cheating_exp import fig4_many_free_riders, fig4_one_free_rider
from repro.experiments.sampling_exp import fig5_to_8_sampling
from repro.experiments.apps_exp import fig10_multipath_gain, fig11_disjoint_paths
from repro.experiments import live_exp as _live_exp  # noqa: F401 - registers live-overlay
from repro.experiments.overhead_exp import overhead_table
from repro.experiments.preferences_exp import preference_skew_ablation

__all__ = [
    "ExperimentResult",
    "Series",
    "fig1_bandwidth",
    "fig1_delay_ping",
    "fig1_delay_pyxida",
    "fig1_node_load",
    "failures_resilience",
    "fig2_churn_rate_sweep",
    "fig2_efficiency_vs_k",
    "fig3_epsilon_comparison",
    "fig3_rewirings_over_time",
    "fig4_many_free_riders",
    "fig4_one_free_rider",
    "fig5_to_8_sampling",
    "fig10_multipath_gain",
    "fig11_disjoint_paths",
    "overhead_table",
    "preference_skew_ablation",
]
