"""A supervisor loop for ``repro serve``: restart-on-crash with backoff.

The paper's EGOIST is a long-running deployed service; this module is
the piece that keeps ours running.  :class:`Supervisor` spawns the serve
process as a child, watches it, and restarts it when it dies abnormally
— with bounded exponential backoff so a crash loop (bad scenario file,
port already bound) cannot busy-spin — while the child's own
checkpoint/recovery machinery (:meth:`OverlayService.recover`) restores
the session state each time.  The pairing is the whole design: the
supervisor only supplies *liveness*; *safety* (no acknowledged mutation
lost, byte-identical epochs) is the recovery protocol's job, which is
exactly what lets the chaos harness SIGKILL the child at arbitrary
points.

Exit taxonomy:

* exit code 0 — clean shutdown (client ``shutdown`` op, drained
  SIGTERM): the supervisor stops, mission complete;
* any other exit — crash: restart after the current backoff delay,
  doubling up to ``backoff_cap``; a child that stayed up for
  ``stable_after`` seconds resets the backoff to ``backoff_base``;
* ``max_restarts`` crashes without an intervening stable run stop the
  loop (a persistent failure needs a human, not a hotter loop).

The supervisor forwards SIGTERM/SIGINT to the child and waits for it to
drain, so ``kill <supervisor-pid>`` is a graceful stop of the whole
tree.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.telemetry import runtime as telemetry
from repro.util.validation import ValidationError

#: First restart delay, seconds.
DEFAULT_BACKOFF_BASE = 0.25

#: Ceiling on the restart delay, seconds.
DEFAULT_BACKOFF_CAP = 8.0

#: A child alive this long resets the backoff (seconds).
DEFAULT_STABLE_AFTER = 5.0


@dataclass
class SupervisorReport:
    """What one supervision run did, for logs and the chaos harness."""

    starts: int = 0
    restarts: int = 0
    last_exit_code: Optional[int] = None
    stopped_clean: bool = False
    gave_up: bool = False
    #: Exit codes observed, in order (negative = killed by that signal).
    exit_codes: List[int] = field(default_factory=list)

    def summary(self) -> str:
        reason = (
            "clean" if self.stopped_clean else ("gave-up" if self.gave_up else "signal")
        )
        return (
            f"SUPERVISE starts={self.starts} restarts={self.restarts} "
            f"last_exit={self.last_exit_code} stop={reason}"
        )


class Supervisor:
    """Keep one child command alive, restarting with bounded backoff.

    Parameters
    ----------
    command:
        argv of the child (the CLI passes its own serve invocation minus
        ``--supervise``).
    backoff_base, backoff_cap:
        Exponential-restart-delay envelope, seconds.
    stable_after:
        Uptime, seconds, after which a child is deemed healthy and the
        backoff resets.
    max_restarts:
        Consecutive-crash budget before giving up (0 = unbounded).
    on_spawn:
        Callback receiving each child :class:`subprocess.Popen` — the
        chaos harness uses it to learn the pid it will SIGKILL.
    stdout:
        Where the child's stdout/stderr go (default: inherit).
    """

    def __init__(
        self,
        command: Sequence[str],
        *,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        backoff_cap: float = DEFAULT_BACKOFF_CAP,
        stable_after: float = DEFAULT_STABLE_AFTER,
        max_restarts: int = 0,
        on_spawn: Optional[Callable[[subprocess.Popen], None]] = None,
        stdout=None,
    ):
        if not command:
            raise ValidationError("the supervisor needs a non-empty command")
        if float(backoff_base) <= 0 or float(backoff_cap) < float(backoff_base):
            raise ValidationError(
                "need 0 < backoff_base <= backoff_cap for a sane restart envelope"
            )
        self.command = list(command)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.stable_after = float(stable_after)
        self.max_restarts = max(0, int(max_restarts))
        self.on_spawn = on_spawn
        self.stdout = stdout
        self.report = SupervisorReport()
        self.child: Optional[subprocess.Popen] = None
        self._stop_requested = False

    # ------------------------------------------------------------------ #
    # Control
    # ------------------------------------------------------------------ #
    def request_stop(self) -> None:
        """Graceful stop: SIGTERM the child, exit the loop when it does.

        Signal-handler safe.
        """
        self._stop_requested = True
        child = self.child
        if child is not None and child.poll() is None:
            try:
                child.send_signal(signal.SIGTERM)
            except ProcessLookupError:
                pass

    def install_signal_handlers(self) -> None:
        """Forward SIGTERM/SIGINT to the child (main thread only)."""
        def _forward(signum, _frame):
            self.request_stop()

        signal.signal(signal.SIGTERM, _forward)
        signal.signal(signal.SIGINT, _forward)

    # ------------------------------------------------------------------ #
    # The loop
    # ------------------------------------------------------------------ #
    def run(self) -> SupervisorReport:
        """Supervise until a clean exit, a stop request, or giving up."""
        delay = self.backoff_base
        consecutive = 0
        while not self._stop_requested:
            started = time.monotonic()
            self.child = subprocess.Popen(
                self.command,
                stdout=self.stdout,
                stderr=subprocess.STDOUT if self.stdout is not None else None,
            )
            self.report.starts += 1
            if self.on_spawn is not None:
                self.on_spawn(self.child)
            code = self._wait_child()
            uptime = time.monotonic() - started
            self.report.last_exit_code = code
            self.report.exit_codes.append(code)
            if code == 0:
                self.report.stopped_clean = True
                break
            if self._stop_requested:
                # The stop arrived while the child was draining; a
                # non-zero exit here is the signal, not a crash.
                break
            telemetry.count("serve.supervisor.restarts")
            self.report.restarts += 1
            if uptime >= self.stable_after:
                delay = self.backoff_base
                consecutive = 1
            else:
                consecutive += 1
            if self.max_restarts and consecutive > self.max_restarts:
                self.report.gave_up = True
                break
            print(
                f"supervisor: child exited {code} after {uptime:.2f}s; "
                f"restart #{self.report.restarts} in {delay:.2f}s",
                file=sys.stderr,
                flush=True,
            )
            if self._sleep_interruptibly(delay):
                break
            delay = min(self.backoff_cap, delay * 2.0)
        self.child = None
        return self.report

    def _wait_child(self) -> int:
        """Wait for the child; poll so stop requests stay responsive."""
        assert self.child is not None
        while True:
            try:
                return self.child.wait(timeout=0.2)
            except subprocess.TimeoutExpired:
                if self._stop_requested and self.child.poll() is None:
                    # request_stop already sent SIGTERM; keep waiting for
                    # the drain.  A second stop request is not escalated
                    # to SIGKILL here: losing the log seal costs a replay.
                    continue

    def _sleep_interruptibly(self, delay: float) -> bool:
        """Sleep the backoff; True when a stop request interrupted it."""
        end = time.monotonic() + delay
        while time.monotonic() < end:
            if self._stop_requested:
                return True
            time.sleep(min(0.05, max(0.0, end - time.monotonic())))
        return self._stop_requested


def serve_command(argv: Sequence[str]) -> List[str]:
    """The child argv for a ``repro serve --supervise`` invocation.

    Re-execs the running interpreter's ``repro`` entry with the same
    arguments minus the supervision flags, so the child is a plain
    foreground server whose crash-recovery flags are untouched.
    """
    drop_with_value = {"--restart-backoff", "--restart-cap", "--max-restarts"}
    out: List[str] = [sys.executable, "-m", "repro.cli"]
    skip = False
    for arg in argv:
        if skip:
            skip = False
            continue
        if arg == "--supervise":
            continue
        if arg in drop_with_value:
            skip = True
            continue
        if any(arg.startswith(flag + "=") for flag in drop_with_value):
            continue
        out.append(arg)
    return out


__all__ = [
    "DEFAULT_BACKOFF_BASE",
    "DEFAULT_BACKOFF_CAP",
    "DEFAULT_STABLE_AFTER",
    "Supervisor",
    "SupervisorReport",
    "serve_command",
]
