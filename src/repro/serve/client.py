"""A small blocking client for the serve protocol.

:class:`ServeClient` speaks the newline-delimited JSON protocol of
:mod:`repro.serve.server` over a unix socket or TCP.  It is what the
workload generator, the CI smoke job, and the tests use — a deliberately
dependency-free socket client, not an SDK.

Pushed subscription events (lines carrying an ``event`` key, no ``id``)
arriving while a request waits for its response are buffered into
:attr:`events`, so one connection can multiplex a subscription with
request/response traffic.

Robustness (the crash-safety work): requests retry on transport
failures and ``busy`` sheds with exponential backoff plus decorrelated
jitter, bounded by ``max_retries`` and an optional per-request
``deadline``; the connection is re-established transparently between
attempts (a supervised server that crashed and recovered looks like one
slow request).  Retried *mutations* carry an idempotency key, so the
server's dedupe window applies them exactly once however many times the
wire delivered them; retried *steps* carry the client's expected epoch
count, so a step whose ack was lost advances exactly one epoch.  Safety:
a non-idempotent request (plain ``step``/``mutate`` without those
fields) is never retried after it may have reached the server — only
connect/send-phase failures re-attempt it.
"""

from __future__ import annotations

import json
import os
import random
import socket
import time
import uuid
from typing import Dict, List, Optional, Sequence, Tuple

from repro.util.validation import ValidationError

#: Error codes the server sends that mean "back off and retry".
RETRYABLE_CODES = ("busy",)

#: Default cap on transparent retries per request.
DEFAULT_MAX_RETRIES = 5

#: First backoff sleep; doubles per attempt up to the cap.
BACKOFF_BASE = 0.05

#: Ceiling on one backoff sleep.
BACKOFF_CAP = 2.0


class RetryBudgetExceeded(ValidationError):
    """The request kept failing past ``max_retries`` (or its deadline)."""


def backoff_delay(attempt: int, *, rng: random.Random) -> float:
    """The sleep before retry ``attempt`` (0-based): capped exp + jitter.

    Full jitter over the exponential envelope — ``U(0, min(cap,
    base * 2**attempt))`` — so a thundering herd of clients retrying
    into a recovering server decorrelates instead of re-spiking it.
    """
    envelope = min(BACKOFF_CAP, BACKOFF_BASE * (2.0 ** attempt))
    return rng.uniform(0.0, envelope)


class ServeClient:
    """Blocking request/response client for one serve connection.

    Parameters
    ----------
    host, port, socket_path:
        Where the server listens (exactly one of port/socket_path).
    timeout:
        Socket timeout per read/write, seconds.
    max_retries:
        Transparent retries per request on transport failures and
        retryable (``busy``) errors; 0 restores the old fail-fast
        behaviour.
    deadline:
        Default per-request wall-clock budget, seconds (None = only
        ``max_retries`` bounds the attempts).  Individual requests can
        override via ``request(..., deadline=...)``.
    retry_seed:
        Seeds the jitter stream — deterministic backoff for tests.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        socket_path: Optional[str] = None,
        timeout: Optional[float] = 30.0,
        max_retries: int = DEFAULT_MAX_RETRIES,
        deadline: Optional[float] = None,
        retry_seed: Optional[int] = None,
    ):
        if (port is None) == (socket_path is None):
            raise ValidationError("exactly one of port or socket_path is required")
        self._host = host
        self._port = int(port) if port is not None else None
        self._socket_path = socket_path
        self._timeout = timeout
        self.max_retries = max(0, int(max_retries))
        self.deadline = deadline
        self._rng = random.Random(retry_seed)
        self._socket: Optional[socket.socket] = None
        self._stream = None
        self._next_id = 0
        #: Buffered subscription events, oldest first.
        self.events: List[Dict[str, object]] = []
        #: Requests that were retried at least once (client-side telemetry).
        self.retried = 0
        #: ``busy`` sheds observed (each consumed one retry attempt).
        self.sheds_seen = 0
        self._connect()

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def _connect(self) -> None:
        self._teardown()
        if self._socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self._timeout)
            sock.connect(self._socket_path)
        else:
            sock = socket.create_connection(
                (self._host, self._port), timeout=self._timeout
            )
        self._socket = sock
        self._stream = sock.makefile("rwb")

    def _teardown(self) -> None:
        if self._stream is not None:
            try:
                self._stream.close()
            except OSError:
                pass
            self._stream = None
        if self._socket is not None:
            try:
                self._socket.close()
            except OSError:
                pass
            self._socket = None

    def request(
        self,
        op: str,
        *,
        deadline: Optional[float] = None,
        idempotent: Optional[bool] = None,
        **fields: object,
    ) -> Dict[str, object]:
        """Send one request and return its (id-matched) response.

        Retries transparently — reconnecting as needed — on connection
        failures and ``busy`` responses, within ``max_retries`` and the
        request's ``deadline``.  ``idempotent`` overrides the built-in
        classification (mutations with an ``idem`` key and steps with an
        ``expect`` count are idempotent; a bare ``step``/``mutate`` is
        not, and is only retried when the failure provably happened
        before the request reached the server).

        Raises :class:`ValidationError` when the server answers with
        ``ok`` false (after retries, for retryable codes), carrying the
        server's error message; :class:`RetryBudgetExceeded` when the
        attempts ran out.
        """
        if idempotent is None:
            if op == "mutate":
                idempotent = "idem" in fields
            elif op == "step":
                idempotent = "expect" in fields
            else:
                idempotent = True
        started = time.monotonic()
        budget = self.deadline if deadline is None else deadline
        attempt = 0
        last_error: Optional[Exception] = None
        while True:
            sent = False
            try:
                if self._stream is None:
                    self._connect()
                reply = self._exchange(op, fields)
                sent = True
                code = reply.get("error")
                if not reply.get("ok") and code in RETRYABLE_CODES:
                    self.sheds_seen += 1
                    raise _Retryable(f"{code}: {reply.get('message', '')}")
                if not reply.get("ok"):
                    raise ValidationError(
                        f"{reply.get('error', 'error')}: {reply.get('message', '')}"
                    )
                return reply
            except _Retryable as error:
                last_error = ValidationError(str(error))
            except (
                ConnectionError,
                BrokenPipeError,
                socket.timeout,
                OSError,
                ValidationError,
            ) as error:
                if isinstance(error, (RetryBudgetExceeded,)):
                    raise
                transport = not isinstance(error, ValidationError) or (
                    "closed the connection" in str(error)
                )
                if not transport:
                    raise
                self._teardown()
                # A non-idempotent request that may have reached the
                # server must not be resent: the first attempt could
                # have applied.  ``sent`` is False only when the
                # failure happened before the response wait began —
                # but a write that "succeeded" into a dead socket can
                # still have been delivered, so anything past connect
                # is treated as possibly-received.
                if not idempotent and self._attempt_reached_server(error, sent):
                    raise ValidationError(
                        f"{op} failed mid-flight and is not idempotent "
                        f"(add an idem key / expect count to retry safely): "
                        f"{error}"
                    )
                last_error = error
            if attempt >= self.max_retries:
                raise RetryBudgetExceeded(
                    f"{op} failed after {attempt + 1} attempt(s): {last_error}"
                )
            delay = backoff_delay(attempt, rng=self._rng)
            if budget is not None:
                elapsed = time.monotonic() - started
                if elapsed + delay > budget:
                    raise RetryBudgetExceeded(
                        f"{op} exceeded its {budget:.3f}s deadline after "
                        f"{attempt + 1} attempt(s): {last_error}"
                    )
            attempt += 1
            self.retried += 1 if attempt == 1 else 0
            time.sleep(delay)

    @staticmethod
    def _attempt_reached_server(error: Exception, sent: bool) -> bool:
        """Could the failed attempt have been processed server-side?

        Connect-phase refusals (``ConnectionRefusedError``,
        ``FileNotFoundError`` for a unix socket that is not there)
        provably never delivered the request; everything later might
        have.
        """
        if isinstance(error, (ConnectionRefusedError, FileNotFoundError)):
            return False
        return True

    def _exchange(self, op: str, fields: Dict[str, object]) -> Dict[str, object]:
        self._next_id += 1
        request_id = self._next_id
        message = {"op": op, "id": request_id, **fields}
        self._stream.write(
            (json.dumps(message, separators=(",", ":")) + "\n").encode()
        )
        self._stream.flush()
        while True:
            reply = self._read_message()
            if "event" in reply and "id" not in reply:
                self.events.append(reply)
                continue
            if reply.get("id") != request_id:
                continue
            return reply

    def _read_message(self) -> Dict[str, object]:
        line = self._stream.readline()
        if not line:
            raise ValidationError("server closed the connection")
        reply = json.loads(line)
        if not isinstance(reply, dict):
            raise ValidationError("server sent a non-object line")
        return reply

    # ------------------------------------------------------------------ #
    # Protocol helpers
    # ------------------------------------------------------------------ #
    def lookup(
        self,
        src: int,
        dst: int,
        *,
        engine: Optional[str] = None,
        path: bool = False,
    ) -> Dict[str, object]:
        fields: Dict[str, object] = {"src": src, "dst": dst}
        if engine is not None:
            fields["engine"] = engine
        if path:
            fields["path"] = True
        return self.request("lookup", **fields)

    def lookup_batch(
        self, pairs: Sequence[Tuple[int, int]], *, engine: Optional[str] = None
    ) -> Dict[str, object]:
        fields: Dict[str, object] = {"pairs": [list(pair) for pair in pairs]}
        if engine is not None:
            fields["engine"] = engine
        return self.request("lookup_batch", **fields)

    def mutate(
        self, mutation: Dict[str, object], *, idem: Optional[str] = None
    ) -> Dict[str, object]:
        """Apply one mutation, exactly once.

        An idempotency key is generated when the caller does not supply
        one, so every mutation sent through this helper is safely
        retryable by default (pass ``idem=""``-like sentinels never;
        use ``request("mutate", mutation=...)`` for the raw op).
        """
        if idem is None:
            idem = f"{os.getpid():x}-{uuid.uuid4().hex}"
        return self.request("mutate", mutation=mutation, idem=idem)

    def step(self, *, expect: Optional[int] = None) -> Dict[str, object]:
        """Advance one epoch.

        With ``expect`` (the epoch count the client believes committed)
        the request is idempotent: a retry after a lost ack returns the
        committed epoch's digest instead of advancing twice.
        """
        fields: Dict[str, object] = {}
        if expect is not None:
            fields["expect"] = int(expect)
        return self.request("step", **fields)

    def subscribe(self) -> Dict[str, object]:
        return self.request("subscribe")

    def snapshot(self) -> Dict[str, object]:
        return self.request("snapshot")

    def stats(self) -> Dict[str, object]:
        return self.request("stats")

    def shutdown(self) -> Dict[str, object]:
        # Retrying shutdown against a connection the dying server just
        # closed turns a clean stop into an error; fail fast instead.
        return self.request("shutdown", idempotent=False)

    def next_event(self) -> Dict[str, object]:
        """The next subscription event (buffered, else read from the wire)."""
        if self.events:
            return self.events.pop(0)
        while True:
            reply = self._read_message()
            if "event" in reply and "id" not in reply:
                return reply

    def close(self) -> None:
        self._teardown()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _Retryable(Exception):
    """Internal marker: the server answered with a retryable code."""


__all__ = [
    "BACKOFF_BASE",
    "BACKOFF_CAP",
    "DEFAULT_MAX_RETRIES",
    "RETRYABLE_CODES",
    "RetryBudgetExceeded",
    "ServeClient",
    "backoff_delay",
]
