"""A small blocking client for the serve protocol.

:class:`ServeClient` speaks the newline-delimited JSON protocol of
:mod:`repro.serve.server` over a unix socket or TCP.  It is what the
workload generator, the CI smoke job, and the tests use — a deliberately
dependency-free socket client, not an SDK.

Pushed subscription events (lines carrying an ``event`` key, no ``id``)
arriving while a request waits for its response are buffered into
:attr:`events`, so one connection can multiplex a subscription with
request/response traffic.
"""

from __future__ import annotations

import json
import socket
from typing import Dict, List, Optional, Sequence, Tuple

from repro.util.validation import ValidationError


class ServeClient:
    """Blocking request/response client for one serve connection."""

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        socket_path: Optional[str] = None,
        timeout: Optional[float] = 30.0,
    ):
        if (port is None) == (socket_path is None):
            raise ValidationError("exactly one of port or socket_path is required")
        if socket_path is not None:
            self._socket = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._socket.settimeout(timeout)
            self._socket.connect(socket_path)
        else:
            self._socket = socket.create_connection((host, int(port)), timeout=timeout)
        self._stream = self._socket.makefile("rwb")
        self._next_id = 0
        #: Buffered subscription events, oldest first.
        self.events: List[Dict[str, object]] = []

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def request(self, op: str, **fields: object) -> Dict[str, object]:
        """Send one request and return its (id-matched) response.

        Raises :class:`ValidationError` when the server answers with
        ``ok`` false, carrying the server's error message.
        """
        self._next_id += 1
        request_id = self._next_id
        message = {"op": op, "id": request_id, **fields}
        self._stream.write((json.dumps(message, separators=(",", ":")) + "\n").encode())
        self._stream.flush()
        while True:
            reply = self._read_message()
            if "event" in reply and "id" not in reply:
                self.events.append(reply)
                continue
            if reply.get("id") != request_id:
                continue
            if not reply.get("ok"):
                raise ValidationError(
                    f"{reply.get('error', 'error')}: {reply.get('message', '')}"
                )
            return reply

    def _read_message(self) -> Dict[str, object]:
        line = self._stream.readline()
        if not line:
            raise ValidationError("server closed the connection")
        reply = json.loads(line)
        if not isinstance(reply, dict):
            raise ValidationError("server sent a non-object line")
        return reply

    # ------------------------------------------------------------------ #
    # Protocol helpers
    # ------------------------------------------------------------------ #
    def lookup(
        self,
        src: int,
        dst: int,
        *,
        engine: Optional[str] = None,
        path: bool = False,
    ) -> Dict[str, object]:
        fields: Dict[str, object] = {"src": src, "dst": dst}
        if engine is not None:
            fields["engine"] = engine
        if path:
            fields["path"] = True
        return self.request("lookup", **fields)

    def lookup_batch(
        self, pairs: Sequence[Tuple[int, int]], *, engine: Optional[str] = None
    ) -> Dict[str, object]:
        fields: Dict[str, object] = {"pairs": [list(pair) for pair in pairs]}
        if engine is not None:
            fields["engine"] = engine
        return self.request("lookup_batch", **fields)

    def mutate(self, mutation: Dict[str, object]) -> Dict[str, object]:
        return self.request("mutate", mutation=mutation)

    def step(self) -> Dict[str, object]:
        return self.request("step")

    def subscribe(self) -> Dict[str, object]:
        return self.request("subscribe")

    def snapshot(self) -> Dict[str, object]:
        return self.request("snapshot")

    def stats(self) -> Dict[str, object]:
        return self.request("stats")

    def shutdown(self) -> Dict[str, object]:
        return self.request("shutdown")

    def next_event(self) -> Dict[str, object]:
        """The next subscription event (buffered, else read from the wire)."""
        if self.events:
            return self.events.pop(0)
        while True:
            reply = self._read_message()
            if "event" in reply and "id" not in reply:
                return reply

    def close(self) -> None:
        try:
            self._stream.close()
        finally:
            self._socket.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


__all__ = ["ServeClient"]
