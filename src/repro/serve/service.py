"""The live overlay service core: one lifecycle Session, served hot.

:class:`OverlayService` is the synchronous heart of ``repro serve`` (the
asyncio server in :mod:`repro.serve.server` is a thin transport around
it, and tests drive it directly).  It owns a
:class:`~repro.scenario.lifecycle.Session`, advances it epoch by epoch
(:meth:`tick`), answers route lookups between ticks, enqueues mutations
for the next tick, and appends every mutation — plus the digest of every
served epoch — to a replayable JSONL log.

Lookup semantics
----------------
A lookup answers "what does the best overlay route from ``src`` to
``dst`` cost (or carry) on the live overlay right now", on the announced
metric the last committed epoch wired under.  The row of route values
for ``src`` is produced one of two ways:

* **cache** — ``src``'s residual matrix sits in the engine's shared
  :class:`~repro.core.route_cache.ResidualRouteCache` under a token
  whose wiring version matches the live overlay (a version-stamped
  read); the full row is then one vectorised reduction over ``src``'s
  wired first hops: ``min_v (w(src,v) + resid[v, :])`` for minimised
  metrics, ``max_v min(w(src,v), resid[v, :])`` for bandwidth.  The
  residual matrix excludes ``src``'s own out-links, so routes never
  revisit the source.
* **sweep** — one single-source sweep over the live overlay graph
  (memoised per wiring version, so repeated lookups from one source pay
  it once).

Either way the answer is stamped with ``(epoch, version)``: the epoch
that committed the overlay and the :class:`GlobalWiring` version the row
is valid under.  Mutations accepted but not yet committed never leak
into an answer — they only apply inside the next ``begin_epoch``.

Replay parity
-------------
The serve path is a scheduler around the existing kernels, never a
second engine: ``tick`` is exactly one :meth:`Session.step`.  Replaying
the mutation log through a fresh batch Session (``repro serve-replay``)
therefore reproduces every served epoch byte-identically, which the log
digests assert.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.codec import (
    cache_stats_to_json,
    encode_float,
    epoch_record_digest,
    epoch_record_to_json,
)
from repro.core.cost import DISCONNECTION_COST
from repro.routing.shortest_path import shortest_path, shortest_path_costs_from
from repro.routing.widest_path import widest_path, widest_path_bandwidths_from
from repro.scenario.lifecycle import Mutation, Session
from repro.scenario.spec import ScenarioSpec
from repro.telemetry import runtime as telemetry
from repro.util.validation import ValidationError

#: Mutation-log schema version (the ``open`` header carries it).
LOG_SCHEMA_VERSION = 1


class ServeError(ValidationError):
    """A request the service cannot serve, with a machine-readable code."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code


class OverlayService:
    """Serve lookups and session mutations over one live Session.

    Parameters
    ----------
    spec:
        The scenario to hold live (one engine per (policy, k) cell).
    batched:
        Kernel path for the underlying engines (results are identical).
    log_path:
        Optional mutation-log path (JSONL, append-only, flushed per
        entry).  Without it the service keeps no log and cannot be
        replayed.
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        *,
        batched: bool = True,
        log_path: Optional[str] = None,
    ):
        self.spec = spec
        self.batched = bool(batched)
        self.session = Session.open(spec, batched=batched)
        self.closed = False
        self._subscribers: List[Callable[[Dict[str, object]], None]] = []
        #: Per-(label, src) route-value rows valid at a wiring version.
        self._rows: Dict[Tuple[str, int], Tuple[int, np.ndarray, str]] = {}
        #: Per-label overlay graphs valid at a wiring version.
        self._graphs: Dict[str, Tuple[int, object]] = {}
        self.counters: Dict[str, int] = {
            "lookups": 0,
            "rows_from_cache": 0,
            "rows_from_sweep": 0,
            "row_memo_hits": 0,
            "mutations": 0,
            "epochs": 0,
        }
        registry = telemetry.metrics()
        if registry is not None:
            # Snapshot-time folding, like the route caches: the service
            # keeps bumping its plain-int counters and the registry reads
            # them (prefixed ``serve.``) whenever someone snapshots.
            registry.register_collector(self._collect_counters)
        self._log = open(log_path, "a") if log_path else None
        self._log_entry(
            {
                "kind": "open",
                "schema": LOG_SCHEMA_VERSION,
                "spec": spec.to_dict(),
                "batched": self.batched,
            }
        )

    # ------------------------------------------------------------------ #
    # Epoch scheduling
    # ------------------------------------------------------------------ #
    def tick(self) -> Dict[str, object]:
        """Advance one epoch and notify subscribers.

        The returned payload is the ``subscribe`` stream's event line:
        the committed epoch's records (codec JSON) per deployment, the
        pooled cache diagnostics, and the epoch digest that the mutation
        log records for replay parity.
        """
        self._check_open()
        with telemetry.span("serve.tick", epoch=self.session.epochs_completed):
            records = self.session.step()
        self._rows.clear()
        self._graphs.clear()
        epoch = self.session.epochs_completed - 1
        digest = epoch_record_digest(records)
        self.counters["epochs"] += 1
        self._log_entry({"kind": "epoch", "epoch": epoch, "digest": digest})
        payload: Dict[str, object] = {
            "event": "epoch",
            "epoch": epoch,
            "digest": digest,
            "records": {
                label: epoch_record_to_json(record)
                for label, record in zip(self.session.labels, records)
            },
            "cache": cache_stats_to_json(self.session.batch.cache_stats()),
        }
        for notify in list(self._subscribers):
            notify(payload)
        return payload

    def subscribe(self, notify: Callable[[Dict[str, object]], None]) -> None:
        """Register a callback receiving every :meth:`tick` payload."""
        self._subscribers.append(notify)

    def unsubscribe(self, notify: Callable[[Dict[str, object]], None]) -> None:
        """Remove a subscriber (ignores unknown callbacks)."""
        try:
            self._subscribers.remove(notify)
        except ValueError:
            pass

    # ------------------------------------------------------------------ #
    # Lookups
    # ------------------------------------------------------------------ #
    def _view(self, label: Optional[str]):
        engine = self.session.engine(label)
        view = engine.last_epoch_view
        if view is None:
            raise ServeError(
                "no-epoch",
                "no epoch has been committed yet; step the session (or start "
                "the server with warmup epochs) before looking up routes",
            )
        return engine, view

    def _graph(self, label: str, engine, view):
        version = engine.wiring.version
        cached = self._graphs.get(label)
        if cached is not None and cached[0] == version:
            return cached[1]
        graph = engine.wiring.to_graph(active=view.active_list)
        self._graphs[label] = (version, graph)
        return graph

    def _cache_row(self, engine, view, src: int) -> Optional[np.ndarray]:
        """``src``'s route-value row from the residual cache, or None.

        A version-stamped read, mirroring the validity screen
        :meth:`Engine.repair_route_entry` applies between epochs: the
        entry must carry the live metric fingerprint and membership key,
        and the wiring changelog since its stamped version may name no
        node but ``src`` itself — ``src``'s residual matrix excludes its
        own out-links, so its own re-wire (and the per-epoch announced
        weight refresh that trails the stamp by one bump) cannot stale
        it.  Anything else falls back to the sweep path.
        """
        cache = engine.route_cache
        if cache is None or view.metric_fp is None:
            return None
        hops = tuple(c for c in view.active_list if c != src)
        if not hops:
            return None
        got = cache.versioned_get(src, hops)
        if got is None:
            return None
        matrix, token = got
        if not (isinstance(token, tuple) and len(token) == 3):
            return None
        version, metric_fp, active_key = token
        if metric_fp != view.metric_fp or active_key != view.active_key:
            return None
        if not isinstance(version, int):
            return None
        changed = engine.wiring.changed_since(version)
        if changed is None or not changed <= {src}:
            return None
        weights = engine.wiring.weights_of(src)
        if not weights:
            return None
        row_of = {hop: index for index, hop in enumerate(hops)}
        neighbors = sorted(v for v in weights if v in row_of)
        if not neighbors:
            return None
        first_hop_rows = matrix[[row_of[v] for v in neighbors], :]
        link = np.array([weights[v] for v in neighbors])[:, None]
        if view.announced.maximize:
            row = np.max(np.minimum(link, first_hop_rows), axis=0)
            row[src] = np.inf
        else:
            row = np.min(link + first_hop_rows, axis=0)
            row[src] = 0.0
        return row

    def _route_row(
        self, engine, view, label: str, src: int
    ) -> Tuple[np.ndarray, str]:
        version = engine.wiring.version
        memo = self._rows.get((label, src))
        if memo is not None and memo[0] == version:
            self.counters["row_memo_hits"] += 1
            return memo[1], memo[2]
        row = self._cache_row(engine, view, src)
        if row is not None:
            source = "cache"
            self.counters["rows_from_cache"] += 1
        else:
            graph = self._graph(label, engine, view)
            if view.announced.maximize:
                row = widest_path_bandwidths_from(graph, src)
            else:
                row = shortest_path_costs_from(
                    graph, src, disconnection_cost=float("inf")
                )
            source = "sweep"
            self.counters["rows_from_sweep"] += 1
        self._rows[(label, src)] = (version, row, source)
        return row, source

    def _value(self, view, row: np.ndarray, dst: int) -> Tuple[object, bool]:
        value = float(row[dst])
        if view.announced.maximize:
            reachable = np.isfinite(value) and value > 0.0
        else:
            reachable = np.isfinite(value) and value < DISCONNECTION_COST
        return (encode_float(value) if reachable else None), bool(reachable)

    def _check_pair(self, src: int, dst: int) -> Tuple[int, int]:
        try:
            src, dst = int(src), int(dst)
        except (TypeError, ValueError):
            raise ServeError("bad-request", "src and dst must be node ids")
        n = self.spec.n
        if not (0 <= src < n and 0 <= dst < n):
            raise ServeError("bad-request", f"src/dst out of range for n={n}")
        if src == dst:
            raise ServeError("bad-request", "src and dst must differ")
        return src, dst

    def lookup(
        self,
        src: int,
        dst: int,
        *,
        engine: Optional[str] = None,
        want_path: bool = False,
    ) -> Dict[str, object]:
        """Route value (optionally the path) from ``src`` to ``dst``."""
        self._check_open()
        src, dst = self._check_pair(src, dst)
        eng, view = self._view(engine)
        label = engine if engine is not None else self.session.labels[0]
        row, source = self._route_row(eng, view, label, src)
        value, reachable = self._value(view, row, dst)
        self.counters["lookups"] += 1
        result: Dict[str, object] = {
            "src": src,
            "dst": dst,
            "value": value,
            "reachable": reachable,
            "engine": label,
            "epoch": view.epoch,
            "version": eng.wiring.version,
            "source": source,
        }
        if want_path:
            graph = self._graph(label, eng, view)
            finder = widest_path if view.announced.maximize else shortest_path
            path = finder(graph, src, dst) if reachable else None
            result["path"] = list(path) if path is not None else None
        return result

    def lookup_batch(
        self, pairs: Sequence[Sequence[int]], *, engine: Optional[str] = None
    ) -> Dict[str, object]:
        """Route values for many ``(src, dst)`` pairs in one call.

        The workload generator's hot path: rows are fetched once per
        distinct source and shared across the batch.  ``values`` holds
        one entry per pair (None when unreachable), in pair order.
        """
        self._check_open()
        if not isinstance(pairs, (list, tuple)):
            raise ServeError("bad-request", "pairs must be a list of [src, dst] pairs")
        eng, view = self._view(engine)
        label = engine if engine is not None else self.session.labels[0]
        values: List[object] = []
        for pair in pairs:
            if not isinstance(pair, (list, tuple)) or len(pair) != 2:
                raise ServeError("bad-request", "each pair must be [src, dst]")
            src, dst = self._check_pair(pair[0], pair[1])
            row, _source = self._route_row(eng, view, label, src)
            value, _reachable = self._value(view, row, dst)
            values.append(value)
        self.counters["lookups"] += len(values)
        return {
            "values": values,
            "engine": label,
            "epoch": view.epoch,
            "version": eng.wiring.version,
        }

    # ------------------------------------------------------------------ #
    # Mutations
    # ------------------------------------------------------------------ #
    def mutate(self, data: Dict[str, object]) -> Dict[str, object]:
        """Enqueue a mutation for the next epoch; logs the resolved form.

        A ``failure`` mutation whose event omits ``epoch`` is resolved
        to the next epoch index here, *before* logging, so the log
        replays deterministically.
        """
        self._check_open()
        if not isinstance(data, dict):
            raise ServeError("bad-request", "mutation must be a JSON object")
        if (
            data.get("kind") == "failure"
            and isinstance(data.get("event"), dict)
            and "epoch" not in data["event"]
        ):
            data = dict(data)
            data["event"] = {**data["event"], "epoch": self.session.epochs_completed}
        mutation = Mutation.from_dict(data)
        applied_epoch = self.session.mutate(mutation)
        self.counters["mutations"] += 1
        self._log_entry(
            {
                "kind": "mutate",
                "applied_epoch": applied_epoch,
                "mutation": mutation.to_dict(),
            }
        )
        return {"applied_epoch": applied_epoch}

    # ------------------------------------------------------------------ #
    # Introspection / shutdown
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, object]:
        """The live session snapshot plus service identity."""
        self._check_open()
        snapshot = self.session.snapshot()
        snapshot["batched"] = self.batched
        return snapshot

    def stats(self) -> Dict[str, object]:
        """Service counters plus the pooled route-cache diagnostics."""
        self._check_open()
        return {
            "counters": dict(self.counters),
            "cache": cache_stats_to_json(self.session.batch.cache_stats()),
            "epochs_completed": self.session.epochs_completed,
        }

    def metrics(self) -> Dict[str, object]:
        """:meth:`stats` superset: adds the telemetry registry snapshot.

        ``metrics`` is ``None`` when the process runs without a registry
        (``repro serve`` always enables one); the ``stats`` fields are
        unchanged so existing clients can upgrade by switching ops.
        """
        data = self.stats()
        registry = telemetry.metrics()
        data["metrics"] = registry.snapshot() if registry is not None else None
        return data

    def _collect_counters(self) -> Dict[str, float]:
        """The service counters as registry-snapshot entries."""
        return {
            f"serve.{name}": float(value) for name, value in self.counters.items()
        }

    def close(self) -> None:
        """Close the session and seal the mutation log."""
        if self.closed:
            return
        self.closed = True
        epochs = self.session.epochs_completed
        self.session.close()
        self._log_entry({"kind": "close", "epochs": epochs})
        if self._log is not None:
            self._log.close()
            self._log = None

    def _check_open(self) -> None:
        if self.closed:
            raise ServeError("closed", "the service is shut down")

    def _log_entry(self, entry: Dict[str, object]) -> None:
        if self._log is None:
            return
        json.dump(entry, self._log, separators=(",", ":"))
        self._log.write("\n")
        self._log.flush()


__all__ = ["LOG_SCHEMA_VERSION", "OverlayService", "ServeError"]
