"""The live overlay service core: one lifecycle Session, served hot.

:class:`OverlayService` is the synchronous heart of ``repro serve`` (the
asyncio server in :mod:`repro.serve.server` is a thin transport around
it, and tests drive it directly).  It owns a
:class:`~repro.scenario.lifecycle.Session`, advances it epoch by epoch
(:meth:`tick`), answers route lookups between ticks, enqueues mutations
for the next tick, and appends every mutation — plus the digest of every
served epoch — to a replayable, durably-fsynced JSONL log.

Lookup semantics
----------------
A lookup answers "what does the best overlay route from ``src`` to
``dst`` cost (or carry) on the live overlay right now", on the announced
metric the last committed epoch wired under.  The row of route values
for ``src`` is produced one of two ways:

* **cache** — ``src``'s residual matrix sits in the engine's shared
  :class:`~repro.core.route_cache.ResidualRouteCache` under a token
  whose wiring version matches the live overlay (a version-stamped
  read); the full row is then one vectorised reduction over ``src``'s
  wired first hops: ``min_v (w(src,v) + resid[v, :])`` for minimised
  metrics, ``max_v min(w(src,v), resid[v, :])`` for bandwidth.  The
  residual matrix excludes ``src``'s own out-links, so routes never
  revisit the source.
* **sweep** — one single-source sweep over the live overlay graph
  (memoised per wiring version, so repeated lookups from one source pay
  it once).

Either way the answer is stamped with ``(epoch, version)``: the epoch
that committed the overlay and the :class:`GlobalWiring` version the row
is valid under.  Mutations accepted but not yet committed never leak
into an answer — they only apply inside the next ``begin_epoch``.

Crash safety
------------
Sessions are byte-deterministic, which makes recovery cheap:
"checkpoint + bounded log-suffix replay, digest-verified".

* Every log append is fsynced before the caller acts on it, so an
  *acknowledged* mutation is on disk before its ack leaves the process.
* With a :class:`~repro.serve.checkpoint.CheckpointManager` attached,
  every ``checkpoint_every`` epochs the service atomically snapshots the
  session (pickled engines — bit-exact RNG state), seals the current
  log segment, and starts a fresh one anchored at that checkpoint — so
  :meth:`recover` replays at most one checkpoint interval.
* Mutations carry optional client **idempotency keys**; a bounded
  server-side dedupe window (checkpointed, and rebuilt from the log
  suffix on recovery) makes a retried mutation apply exactly once, even
  across a crash between the ack and the retry.
* :meth:`step` accepts the client's expected epoch count and answers a
  duplicate request (a retry of a step whose ack was lost in a crash)
  with the already-committed epoch's digest instead of advancing again.

Replay parity
-------------
The serve path is a scheduler around the existing kernels, never a
second engine: ``tick`` is exactly one :meth:`Session.step`.  Replaying
the mutation log through a fresh batch Session (``repro serve-replay``)
therefore reproduces every served epoch byte-identically, which the log
digests assert — and :meth:`recover` uses the same digests to verify a
restored checkpoint before accepting connections.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.codec import (
    cache_stats_to_json,
    encode_float,
    epoch_record_digest,
    epoch_record_to_json,
)
from repro.core.cost import DISCONNECTION_COST
from repro.routing.shortest_path import shortest_path, shortest_path_costs_from
from repro.routing.widest_path import widest_path, widest_path_bandwidths_from
from repro.scenario.lifecycle import Mutation, Session
from repro.scenario.spec import ScenarioSpec
from repro.serve.checkpoint import CheckpointManager, CheckpointState
from repro.serve.oplog import (
    LOG_SCHEMA_VERSION,
    LogWriter,
    compact_segments,
    read_segment,
    segment_path,
)
from repro.telemetry import runtime as telemetry
from repro.util.validation import ValidationError

#: Idempotency keys remembered for mutation dedupe (FIFO window).
DEDUPE_WINDOW = 1024

#: Recent epoch digests kept for idempotent ``step`` replies.
EPOCH_DIGEST_WINDOW = 128


class ServeError(ValidationError):
    """A request the service cannot serve, with a machine-readable code."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code


class RecoveryError(ValidationError):
    """Recovery could not restore a state consistent with the log."""


@dataclass
class RecoveryReport:
    """What one :meth:`OverlayService.recover` run did."""

    #: Checkpoint file the session was restored from (None = replayed
    #: from scratch, either a fresh segment-0 log or the archived chain).
    checkpoint: Optional[str]
    #: Epochs already inside the restored starting state.
    checkpoint_epochs: int
    #: Epochs replayed from the crashed segment's suffix.
    replayed_epochs: int
    #: Mutations re-enqueued (committed ones replay inside their epochs).
    replayed_mutations: int
    #: Bytes of torn (crash-interrupted) final line truncated away.
    torn_tail_bytes: int
    #: Sidecar file preserving the torn tail, when one was written.
    sidecar: Optional[str]
    #: Epochs live after recovery.
    epochs_completed: int
    #: Log segment index recovery resumed writing into.
    segment: int
    #: The service's checkpoint interval (0 = checkpointing off).
    checkpoint_every: int
    #: Checkpoint files skipped as invalid while hunting for a good one.
    skipped_checkpoints: List[str] = field(default_factory=list)
    #: True when the crashed segment was sealed (clean-shutdown restart).
    was_sealed: bool = False

    @property
    def bounded(self) -> bool:
        """Did recovery replay at most one checkpoint interval?"""
        if self.checkpoint_every <= 0:
            return self.checkpoint is None and self.segment <= 1
        return self.replayed_epochs <= self.checkpoint_every

    def summary(self) -> str:
        """The machine-greppable recovery line CI latches onto."""
        return (
            f"RECOVERY checkpoint={self.checkpoint or 'none'} "
            f"checkpoint_epochs={self.checkpoint_epochs} "
            f"replayed_epochs={self.replayed_epochs} "
            f"replayed_mutations={self.replayed_mutations} "
            f"torn_tail={self.torn_tail_bytes} "
            f"epochs={self.epochs_completed} segment={self.segment} "
            f"bounded={'yes' if self.bounded else 'NO'}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "checkpoint": self.checkpoint,
            "checkpoint_epochs": self.checkpoint_epochs,
            "replayed_epochs": self.replayed_epochs,
            "replayed_mutations": self.replayed_mutations,
            "torn_tail_bytes": self.torn_tail_bytes,
            "sidecar": self.sidecar,
            "epochs_completed": self.epochs_completed,
            "segment": self.segment,
            "checkpoint_every": self.checkpoint_every,
            "bounded": self.bounded,
            "was_sealed": self.was_sealed,
            "skipped_checkpoints": list(self.skipped_checkpoints),
        }


class OverlayService:
    """Serve lookups and session mutations over one live Session.

    Parameters
    ----------
    spec:
        The scenario to hold live (one engine per (policy, k) cell).
    batched:
        Kernel path for the underlying engines (results are identical).
    log_path:
        Optional mutation-log path (JSONL, append-only, fsynced per
        entry).  Without it the service keeps no log and cannot be
        replayed or recovered.
    checkpoint_dir:
        Directory for atomic session checkpoints (requires
        ``log_path``).  Enables bounded-replay recovery.
    checkpoint_every:
        Checkpoint (and rotate the log) every this many epochs; 0
        disables periodic checkpoints even with a directory attached.
    keep_checkpoints:
        Retain only the newest N checkpoints and compact away log
        segments older than the oldest retained one; 0 keeps everything
        (so ``serve-replay`` can always replay the full history).
    dedupe_window:
        Idempotency keys remembered for exactly-once mutation retries.
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        *,
        batched: bool = True,
        log_path: Optional[str] = None,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every: int = 0,
        keep_checkpoints: int = 0,
        dedupe_window: int = DEDUPE_WINDOW,
        _restore: Optional[Dict[str, object]] = None,
    ):
        if checkpoint_dir is not None and log_path is None:
            raise ValidationError(
                "checkpoint_dir requires log_path: checkpoints anchor log "
                "segments, there is nothing to anchor without a log"
            )
        if int(dedupe_window) < 1:
            raise ValidationError("dedupe_window must be at least 1")
        self.spec = spec
        self.batched = bool(batched)
        self.checkpoint_every = max(0, int(checkpoint_every))
        self.keep_checkpoints = max(0, int(keep_checkpoints))
        self.dedupe_window = int(dedupe_window)
        self.closed = False
        self._subscribers: List[Callable[[Dict[str, object]], None]] = []
        #: Per-(label, src) route-value rows valid at a wiring version.
        self._rows: Dict[Tuple[str, int], Tuple[int, np.ndarray, str]] = {}
        #: Per-label overlay graphs valid at a wiring version.
        self._graphs: Dict[str, Tuple[int, object]] = {}
        #: Idempotency-key dedupe window: key -> applied_epoch (FIFO).
        self._dedupe: "OrderedDict[str, int]" = OrderedDict()
        #: Recent committed-epoch digests for idempotent ``step`` replies.
        self._epoch_digests: "OrderedDict[int, str]" = OrderedDict()
        self.counters: Dict[str, int] = {
            "lookups": 0,
            "rows_from_cache": 0,
            "rows_from_sweep": 0,
            "row_memo_hits": 0,
            "mutations": 0,
            "epochs": 0,
            "checkpoints": 0,
            "recoveries": 0,
            "retries": 0,
            "shed": 0,
        }
        self.last_recovery: Optional[RecoveryReport] = None
        self._checkpoints = (
            CheckpointManager(checkpoint_dir) if checkpoint_dir is not None else None
        )
        registry = telemetry.metrics()
        if registry is not None:
            # Snapshot-time folding, like the route caches: the service
            # keeps bumping its plain-int counters and the registry reads
            # them (prefixed ``serve.``) whenever someone snapshots.
            registry.register_collector(self._collect_counters)
        if _restore is not None:
            self.session: Session = _restore["session"]
            self._log: Optional[LogWriter] = _restore["log"]
            self._dedupe.update(_restore["dedupe"])
            self._epoch_digests.update(_restore["epoch_digests"])
            self.last_recovery = _restore["report"]
            self.counters["recoveries"] = 1
            return
        self.session = Session.open(spec, batched=batched)
        self._log = LogWriter(log_path) if log_path else None
        if self._log is not None:
            self._log.append(self._header(segment=0, resumed_from=None))

    def _header(
        self, *, segment: int, resumed_from: Optional[Dict[str, object]]
    ) -> Dict[str, object]:
        header: Dict[str, object] = {
            "kind": "open",
            "schema": LOG_SCHEMA_VERSION,
            "spec": self.spec.to_dict(),
            "batched": self.batched,
            "segment": int(segment),
        }
        if resumed_from is not None:
            header["resumed_from"] = resumed_from
        return header

    # ------------------------------------------------------------------ #
    # Epoch scheduling
    # ------------------------------------------------------------------ #
    def tick(self) -> Dict[str, object]:
        """Advance one epoch and notify subscribers.

        The returned payload is the ``subscribe`` stream's event line:
        the committed epoch's records (codec JSON) per deployment, the
        pooled cache diagnostics, and the epoch digest that the mutation
        log records for replay parity.  When the epoch lands on the
        checkpoint cadence, the session is snapshotted and the log
        rotated before the payload is returned.
        """
        self._check_open()
        with telemetry.span("serve.tick", epoch=self.session.epochs_completed):
            records = self.session.step()
        self._rows.clear()
        self._graphs.clear()
        epoch = self.session.epochs_completed - 1
        digest = epoch_record_digest(records)
        self.counters["epochs"] += 1
        self._remember_digest(epoch, digest)
        self._log_entry({"kind": "epoch", "epoch": epoch, "digest": digest})
        self._maybe_checkpoint()
        payload: Dict[str, object] = {
            "event": "epoch",
            "epoch": epoch,
            "digest": digest,
            "records": {
                label: epoch_record_to_json(record)
                for label, record in zip(self.session.labels, records)
            },
            "cache": cache_stats_to_json(self.session.batch.cache_stats()),
        }
        for notify in list(self._subscribers):
            notify(payload)
        return payload

    def step(self, expect: Optional[int] = None) -> Dict[str, object]:
        """One :meth:`tick`, idempotent against crash-lost acks.

        ``expect`` is the number of epochs the client believes have been
        committed — "advance from ``expect`` to ``expect + 1``".  When
        the service is already one epoch ahead (the previous attempt
        committed but its ack was lost to a crash or dropped
        connection), the committed epoch's digest is returned again
        without stepping, so a retried ``step`` advances exactly one
        epoch no matter how many times it is sent.  Any other mismatch
        is an ``epoch-mismatch`` error: the client's view has diverged
        by more than a lost ack and must resynchronise via ``snapshot``.
        """
        self._check_open()
        if expect is None:
            return self.tick()
        try:
            expect = int(expect)
        except (TypeError, ValueError):
            raise ServeError("bad-request", "step expect must be an epoch count")
        done = self.session.epochs_completed
        if expect == done:
            return self.tick()
        if expect == done - 1:
            digest = self._epoch_digests.get(done - 1)
            if digest is None:  # pragma: no cover - window exceeded
                raise ServeError(
                    "epoch-mismatch",
                    f"epoch {done - 1} is outside the digest window",
                )
            self.counters["retries"] += 1
            telemetry.count("serve.step.deduplicated")
            return {
                "event": "epoch",
                "epoch": done - 1,
                "digest": digest,
                "duplicate": True,
            }
        raise ServeError(
            "epoch-mismatch",
            f"step expected {expect} completed epochs but the service has "
            f"{done}; resynchronise with a snapshot",
        )

    def subscribe(self, notify: Callable[[Dict[str, object]], None]) -> None:
        """Register a callback receiving every :meth:`tick` payload."""
        self._subscribers.append(notify)

    def unsubscribe(self, notify: Callable[[Dict[str, object]], None]) -> None:
        """Remove a subscriber (ignores unknown callbacks)."""
        try:
            self._subscribers.remove(notify)
        except ValueError:
            pass

    # ------------------------------------------------------------------ #
    # Checkpoints
    # ------------------------------------------------------------------ #
    def _remember_digest(self, epoch: int, digest: str) -> None:
        self._epoch_digests[epoch] = digest
        while len(self._epoch_digests) > EPOCH_DIGEST_WINDOW:
            self._epoch_digests.popitem(last=False)

    def _maybe_checkpoint(self) -> None:
        if (
            self._checkpoints is None
            or self.checkpoint_every <= 0
            or self.session.epochs_completed % self.checkpoint_every != 0
        ):
            return
        self.write_checkpoint()

    def write_checkpoint(self) -> Optional[str]:
        """Snapshot the session now and rotate the log onto it.

        The checkpoint anchors the *next* segment: its envelope records
        the state at the segment boundary, the sealed segment ends with
        a ``checkpoint`` entry naming it, and the fresh segment's header
        resumes from it — so recovery of the fresh segment replays only
        entries after this point.  Returns the checkpoint file name
        (None when the service has no checkpoint manager).
        """
        self._check_open()
        if self._checkpoints is None or self._log is None:
            return None
        with telemetry.span(
            "serve.checkpoint", epochs=self.session.epochs_completed
        ):
            next_segment = self._log.segment + 1
            name = self._checkpoints.write(
                self.session,
                spec=self.spec.to_dict(),
                batched=self.batched,
                epochs_completed=self.session.epochs_completed,
                segment=next_segment,
                epoch_digests=dict(self._epoch_digests),
                dedupe=dict(self._dedupe),
            )
            self._log.append(
                {
                    "kind": "checkpoint",
                    "epochs_completed": self.session.epochs_completed,
                    "file": name,
                }
            )
            self._log.rotate(
                self._header(
                    segment=next_segment,
                    resumed_from={
                        "checkpoint": name,
                        "epochs_completed": self.session.epochs_completed,
                    },
                )
            )
            # Surfaced through the registry by the counter collector —
            # no telemetry.count here, which would double-report it.
            self.counters["checkpoints"] += 1
            self._compact()
        return name

    def _compact(self) -> None:
        """Apply the retention policy after a successful checkpoint."""
        if self.keep_checkpoints <= 0 or self._checkpoints is None:
            return
        self._checkpoints.prune(self.keep_checkpoints)
        oldest = self._checkpoints.oldest_segment()
        if oldest is not None and self._log is not None:
            compact_segments(self._log.path, keep_from=oldest - 1)

    # ------------------------------------------------------------------ #
    # Recovery
    # ------------------------------------------------------------------ #
    @classmethod
    def recover(
        cls,
        log_path: str,
        *,
        checkpoint_dir: Optional[str] = None,
        batched: Optional[bool] = None,
        checkpoint_every: int = 0,
        keep_checkpoints: int = 0,
        dedupe_window: int = DEDUPE_WINDOW,
    ) -> "OverlayService":
        """Restore a service from its mutation log (and checkpoints).

        The recovery protocol:

        1. read the current log segment, repairing a torn final line
           (the raw tail goes to a ``.corrupt`` sidecar);
        2. restore the starting state — the checkpoint the segment's
           header resumes from (digest-verified, falling back to older
           checkpoints or a full archived-chain replay when it is
           damaged), or a fresh session for a segment-0 log;
        3. replay the segment's suffix through the engines, digest-
           checking every replayed epoch against the log's sealed
           digests — a mismatch aborts recovery rather than serving
           diverged state;
        4. rebuild the idempotency dedupe window (checkpointed base plus
           suffix entries), archive the crashed segment, write a fresh
           recovery checkpoint, and open a new segment anchored on it.

        The returned service's :attr:`last_recovery` report says what
        happened; its ``bounded`` flag asserts the replay never exceeded
        one checkpoint interval.
        """
        with telemetry.span("serve.recovery"):
            return cls._recover(
                log_path,
                checkpoint_dir=checkpoint_dir,
                batched=batched,
                checkpoint_every=checkpoint_every,
                keep_checkpoints=keep_checkpoints,
                dedupe_window=dedupe_window,
            )

    @classmethod
    def _recover(
        cls,
        log_path: str,
        *,
        checkpoint_dir: Optional[str],
        batched: Optional[bool],
        checkpoint_every: int,
        keep_checkpoints: int,
        dedupe_window: int,
    ) -> "OverlayService":
        read = read_segment(log_path, repair=True)
        entries = read.entries
        if not entries or entries[0].get("kind") != "open":
            raise RecoveryError(
                f"{log_path}: log does not start with an open header; "
                "cannot recover"
            )
        header = entries[0]
        if header.get("schema") not in (1, LOG_SCHEMA_VERSION):
            raise RecoveryError(
                f"{log_path}: unsupported log schema {header.get('schema')!r}"
            )
        spec = ScenarioSpec.from_dict(header["spec"])
        if batched is None:
            batched = bool(header.get("batched", True))
        segment = int(header.get("segment", 0))
        resumed = header.get("resumed_from")
        manager = (
            CheckpointManager(checkpoint_dir) if checkpoint_dir is not None else None
        )

        state: Optional[CheckpointState] = None
        skipped: List[str] = []
        if resumed is not None:
            state, skipped = cls._restore_start_state(
                log_path, resumed, segment, manager, batched
            )
        if state is not None:
            session: Session = state.session
            # The pickled batch carries its own kernel flag; honour an
            # explicit override (both paths are bit-identical).
            session.batch.batched = bool(batched)
            checkpoint_name = state.name
            checkpoint_epochs = state.epochs_completed
            dedupe: "OrderedDict[str, int]" = OrderedDict(
                sorted(state.dedupe.items(), key=lambda item: item[1])
            )
            digests: "OrderedDict[int, str]" = OrderedDict(
                sorted(state.epoch_digests.items())
            )
        else:
            session = Session.open(spec, batched=bool(batched))
            checkpoint_name = None
            checkpoint_epochs = 0
            dedupe = OrderedDict()
            digests = OrderedDict()

        replayed_epochs = 0
        replayed_mutations = 0
        was_sealed = False
        for entry in entries[1:]:
            kind = entry.get("kind")
            if kind == "mutate":
                mutation = Mutation.from_dict(entry["mutation"])
                session.mutate(mutation)
                replayed_mutations += 1
                idem = entry.get("idem")
                if isinstance(idem, str):
                    dedupe[idem] = int(entry.get("applied_epoch", 0))
            elif kind == "epoch":
                records = session.step()
                digest = epoch_record_digest(records)
                if digest != entry.get("digest"):
                    raise RecoveryError(
                        f"recovered state diverged at epoch {entry.get('epoch')}: "
                        f"log sealed {entry.get('digest')!r} but replay produced "
                        f"{digest!r} — refusing to serve"
                    )
                digests[int(entry.get("epoch", 0))] = digest
                replayed_epochs += 1
            elif kind == "checkpoint":
                # Crash landed between the checkpoint entry and the
                # rotation; the snapshot (if it survived) re-anchors on
                # the next rotation anyway.
                continue
            elif kind == "close":
                was_sealed = True
            else:
                raise RecoveryError(f"unknown log entry kind {kind!r}")

        while len(dedupe) > int(dedupe_window):
            dedupe.popitem(last=False)
        while len(digests) > EPOCH_DIGEST_WINDOW:
            digests.popitem(last=False)

        # Archive the crashed segment and resume writing into a fresh
        # one, anchored on a checkpoint of the just-recovered state.
        new_segment = segment + 1
        os.replace(log_path, segment_path(log_path, segment))
        resumed_from: Optional[Dict[str, object]] = None
        if manager is not None:
            name = manager.write(
                session,
                spec=spec.to_dict(),
                batched=bool(batched),
                epochs_completed=session.epochs_completed,
                segment=new_segment,
                epoch_digests=dict(digests),
                dedupe=dict(dedupe),
            )
            resumed_from = {
                "checkpoint": name,
                "epochs_completed": session.epochs_completed,
            }
        else:
            resumed_from = {
                "checkpoint": None,
                "epochs_completed": session.epochs_completed,
            }
        log = LogWriter(log_path, segment=new_segment)

        report = RecoveryReport(
            checkpoint=checkpoint_name,
            checkpoint_epochs=checkpoint_epochs,
            replayed_epochs=replayed_epochs,
            replayed_mutations=replayed_mutations,
            torn_tail_bytes=len(read.torn_tail or b""),
            sidecar=read.sidecar,
            epochs_completed=session.epochs_completed,
            segment=new_segment,
            checkpoint_every=max(0, int(checkpoint_every)),
            skipped_checkpoints=skipped,
            was_sealed=was_sealed,
        )
        service = cls(
            spec,
            batched=bool(batched),
            log_path=log_path,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
            keep_checkpoints=keep_checkpoints,
            dedupe_window=dedupe_window,
            _restore={
                "session": session,
                "log": log,
                "dedupe": dedupe,
                "epoch_digests": digests,
                "report": report,
            },
        )
        log.append(service._header(segment=new_segment, resumed_from=resumed_from))
        return service

    @classmethod
    def _restore_start_state(
        cls,
        log_path: str,
        resumed: Dict[str, object],
        segment: int,
        manager: Optional[CheckpointManager],
        batched: bool,
    ) -> Tuple[Optional[CheckpointState], List[str]]:
        """The session state the current segment starts from.

        Prefers the exact checkpoint the header names; a damaged or
        missing checkpoint falls back to replaying the archived segment
        chain from scratch (when it is complete), because a wrong
        starting state would fail every digest check anyway.
        """
        skipped: List[str] = []
        wanted_epochs = int(resumed.get("epochs_completed", 0))
        if manager is not None and resumed.get("checkpoint"):
            try:
                state = manager.load(str(resumed["checkpoint"]))
                if state.epochs_completed == wanted_epochs:
                    return state, skipped
                skipped.append(
                    f"{resumed['checkpoint']}: epochs_completed "
                    f"{state.epochs_completed} != header's {wanted_epochs}"
                )
            except ValidationError as error:
                skipped.append(str(error))
        # Chain fallback: rebuild the anchor state by replaying every
        # archived segment from the beginning.
        from repro.serve.replay import collect_windows, session_from_segments

        try:
            session = session_from_segments(
                log_path, through_segment=segment - 1, batched=batched
            )
        except ValidationError as error:
            raise RecoveryError(
                f"cannot restore the state segment {segment} resumes from: "
                f"checkpoint unusable ({'; '.join(skipped) or 'none named'}) "
                f"and chain replay failed ({error})"
            )
        if session.epochs_completed != wanted_epochs:
            raise RecoveryError(
                f"chain replay reached {session.epochs_completed} epochs but "
                f"segment {segment} resumes from {wanted_epochs}"
            )
        digests, dedupe = collect_windows(log_path, through_segment=segment - 1)
        state = CheckpointState(
            name=None,  # the report shows a from-scratch chain replay
            session=session,
            spec={},
            batched=batched,
            epochs_completed=session.epochs_completed,
            segment=segment,
            epoch_digests=digests,
            dedupe=dedupe,
        )
        return state, skipped

    # ------------------------------------------------------------------ #
    # Lookups
    # ------------------------------------------------------------------ #
    def _view(self, label: Optional[str]):
        engine = self.session.engine(label)
        view = engine.last_epoch_view
        if view is None:
            raise ServeError(
                "no-epoch",
                "no epoch has been committed yet; step the session (or start "
                "the server with warmup epochs) before looking up routes",
            )
        return engine, view

    def _graph(self, label: str, engine, view):
        version = engine.wiring.version
        cached = self._graphs.get(label)
        if cached is not None and cached[0] == version:
            return cached[1]
        graph = engine.wiring.to_graph(active=view.active_list)
        self._graphs[label] = (version, graph)
        return graph

    def _cache_row(self, engine, view, src: int) -> Optional[np.ndarray]:
        """``src``'s route-value row from the residual cache, or None.

        A version-stamped read, mirroring the validity screen
        :meth:`Engine.repair_route_entry` applies between epochs: the
        entry must carry the live metric fingerprint and membership key,
        and the wiring changelog since its stamped version may name no
        node but ``src`` itself — ``src``'s residual matrix excludes its
        own out-links, so its own re-wire (and the per-epoch announced
        weight refresh that trails the stamp by one bump) cannot stale
        it.  Anything else falls back to the sweep path.
        """
        cache = engine.route_cache
        if cache is None or view.metric_fp is None:
            return None
        hops = tuple(c for c in view.active_list if c != src)
        if not hops:
            return None
        got = cache.versioned_get(src, hops)
        if got is None:
            return None
        matrix, token = got
        if not (isinstance(token, tuple) and len(token) == 3):
            return None
        version, metric_fp, active_key = token
        if metric_fp != view.metric_fp or active_key != view.active_key:
            return None
        if not isinstance(version, int):
            return None
        changed = engine.wiring.changed_since(version)
        if changed is None or not changed <= {src}:
            return None
        weights = engine.wiring.weights_of(src)
        if not weights:
            return None
        row_of = {hop: index for index, hop in enumerate(hops)}
        neighbors = sorted(v for v in weights if v in row_of)
        if not neighbors:
            return None
        first_hop_rows = matrix[[row_of[v] for v in neighbors], :]
        link = np.array([weights[v] for v in neighbors])[:, None]
        if view.announced.maximize:
            row = np.max(np.minimum(link, first_hop_rows), axis=0)
            row[src] = np.inf
        else:
            row = np.min(link + first_hop_rows, axis=0)
            row[src] = 0.0
        return row

    def _route_row(
        self, engine, view, label: str, src: int
    ) -> Tuple[np.ndarray, str]:
        version = engine.wiring.version
        memo = self._rows.get((label, src))
        if memo is not None and memo[0] == version:
            self.counters["row_memo_hits"] += 1
            return memo[1], memo[2]
        row = self._cache_row(engine, view, src)
        if row is not None:
            source = "cache"
            self.counters["rows_from_cache"] += 1
        else:
            graph = self._graph(label, engine, view)
            if view.announced.maximize:
                row = widest_path_bandwidths_from(graph, src)
            else:
                row = shortest_path_costs_from(
                    graph, src, disconnection_cost=float("inf")
                )
            source = "sweep"
            self.counters["rows_from_sweep"] += 1
        self._rows[(label, src)] = (version, row, source)
        return row, source

    def _value(self, view, row: np.ndarray, dst: int) -> Tuple[object, bool]:
        value = float(row[dst])
        if view.announced.maximize:
            reachable = np.isfinite(value) and value > 0.0
        else:
            reachable = np.isfinite(value) and value < DISCONNECTION_COST
        return (encode_float(value) if reachable else None), bool(reachable)

    def _check_pair(self, src: int, dst: int) -> Tuple[int, int]:
        try:
            src, dst = int(src), int(dst)
        except (TypeError, ValueError):
            raise ServeError("bad-request", "src and dst must be node ids")
        n = self.spec.n
        if not (0 <= src < n and 0 <= dst < n):
            raise ServeError("bad-request", f"src/dst out of range for n={n}")
        if src == dst:
            raise ServeError("bad-request", "src and dst must differ")
        return src, dst

    def lookup(
        self,
        src: int,
        dst: int,
        *,
        engine: Optional[str] = None,
        want_path: bool = False,
    ) -> Dict[str, object]:
        """Route value (optionally the path) from ``src`` to ``dst``."""
        self._check_open()
        src, dst = self._check_pair(src, dst)
        eng, view = self._view(engine)
        label = engine if engine is not None else self.session.labels[0]
        row, source = self._route_row(eng, view, label, src)
        value, reachable = self._value(view, row, dst)
        self.counters["lookups"] += 1
        result: Dict[str, object] = {
            "src": src,
            "dst": dst,
            "value": value,
            "reachable": reachable,
            "engine": label,
            "epoch": view.epoch,
            "version": eng.wiring.version,
            "source": source,
        }
        if want_path:
            graph = self._graph(label, eng, view)
            finder = widest_path if view.announced.maximize else shortest_path
            path = finder(graph, src, dst) if reachable else None
            result["path"] = list(path) if path is not None else None
        return result

    def lookup_batch(
        self, pairs: Sequence[Sequence[int]], *, engine: Optional[str] = None
    ) -> Dict[str, object]:
        """Route values for many ``(src, dst)`` pairs in one call.

        The workload generator's hot path: rows are fetched once per
        distinct source and shared across the batch.  ``values`` holds
        one entry per pair (None when unreachable), in pair order.
        """
        self._check_open()
        if not isinstance(pairs, (list, tuple)):
            raise ServeError("bad-request", "pairs must be a list of [src, dst] pairs")
        eng, view = self._view(engine)
        label = engine if engine is not None else self.session.labels[0]
        values: List[object] = []
        for pair in pairs:
            if not isinstance(pair, (list, tuple)) or len(pair) != 2:
                raise ServeError("bad-request", "each pair must be [src, dst]")
            src, dst = self._check_pair(pair[0], pair[1])
            row, _source = self._route_row(eng, view, label, src)
            value, _reachable = self._value(view, row, dst)
            values.append(value)
        self.counters["lookups"] += len(values)
        return {
            "values": values,
            "engine": label,
            "epoch": view.epoch,
            "version": eng.wiring.version,
        }

    # ------------------------------------------------------------------ #
    # Mutations
    # ------------------------------------------------------------------ #
    def mutate(
        self, data: Dict[str, object], *, idem: Optional[str] = None
    ) -> Dict[str, object]:
        """Enqueue a mutation for the next epoch; logs the resolved form.

        ``idem`` is the client's idempotency key: a repeated key inside
        the dedupe window returns the original acknowledgement without
        enqueueing again, so a client retrying a mutation whose ack was
        lost (connection drop, server crash after the durable log
        append) applies it exactly once.  The ack only leaves this
        method after the log entry is fsynced — an acknowledged mutation
        is never lost to a crash.

        A ``failure`` mutation whose event omits ``epoch`` is resolved
        to the next epoch index here, *before* logging, so the log
        replays deterministically.
        """
        self._check_open()
        if idem is not None:
            if not isinstance(idem, str) or not idem or len(idem) > 128:
                raise ServeError(
                    "bad-request",
                    "idem must be a non-empty string of at most 128 characters",
                )
            if idem in self._dedupe:
                self.counters["retries"] += 1
                telemetry.count("serve.mutate.deduplicated")
                return {
                    "applied_epoch": self._dedupe[idem],
                    "deduplicated": True,
                }
        if not isinstance(data, dict):
            raise ServeError("bad-request", "mutation must be a JSON object")
        if (
            data.get("kind") == "failure"
            and isinstance(data.get("event"), dict)
            and "epoch" not in data["event"]
        ):
            data = dict(data)
            data["event"] = {**data["event"], "epoch": self.session.epochs_completed}
        mutation = Mutation.from_dict(data)
        applied_epoch = self.session.mutate(mutation)
        self.counters["mutations"] += 1
        entry: Dict[str, object] = {
            "kind": "mutate",
            "applied_epoch": applied_epoch,
            "mutation": mutation.to_dict(),
        }
        if idem is not None:
            entry["idem"] = idem
            self._dedupe[idem] = applied_epoch
            while len(self._dedupe) > self.dedupe_window:
                self._dedupe.popitem(last=False)
        self._log_entry(entry)
        return {"applied_epoch": applied_epoch}

    # ------------------------------------------------------------------ #
    # Introspection / shutdown
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, object]:
        """The live session snapshot plus service identity."""
        self._check_open()
        snapshot = self.session.snapshot()
        snapshot["batched"] = self.batched
        return snapshot

    def stats(self) -> Dict[str, object]:
        """Service counters plus the pooled route-cache diagnostics."""
        self._check_open()
        return {
            "counters": dict(self.counters),
            "cache": cache_stats_to_json(self.session.batch.cache_stats()),
            "epochs_completed": self.session.epochs_completed,
            "dedupe": {
                "window": self.dedupe_window,
                "size": len(self._dedupe),
            },
            "recovery": (
                self.last_recovery.to_dict()
                if self.last_recovery is not None
                else None
            ),
        }

    def metrics(self) -> Dict[str, object]:
        """:meth:`stats` superset: adds the telemetry registry snapshot.

        ``metrics`` is ``None`` when the process runs without a registry
        (``repro serve`` always enables one); the ``stats`` fields are
        unchanged so existing clients can upgrade by switching ops.
        """
        data = self.stats()
        registry = telemetry.metrics()
        data["metrics"] = registry.snapshot() if registry is not None else None
        return data

    def _collect_counters(self) -> Dict[str, float]:
        """The service counters as registry-snapshot entries."""
        return {
            f"serve.{name}": float(value) for name, value in self.counters.items()
        }

    def close(self) -> None:
        """Close the session and seal the mutation log."""
        if self.closed:
            return
        self.closed = True
        epochs = self.session.epochs_completed
        self.session.close()
        self._log_entry({"kind": "close", "epochs": epochs})
        if self._log is not None:
            self._log.close()
            self._log = None

    def _check_open(self) -> None:
        if self.closed:
            raise ServeError("closed", "the service is shut down")

    def _log_entry(self, entry: Dict[str, object]) -> None:
        if self._log is None:
            return
        self._log.append(entry)


__all__ = [
    "DEDUPE_WINDOW",
    "EPOCH_DIGEST_WINDOW",
    "LOG_SCHEMA_VERSION",
    "OverlayService",
    "RecoveryError",
    "RecoveryReport",
    "ServeError",
]
