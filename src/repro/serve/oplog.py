"""Segmented, crash-tolerant mutation-log I/O for the serve stack.

The service's mutation log used to be one ever-growing JSONL file whose
only recovery story was a full replay from epoch 0.  This module gives
the log a *segment* structure anchored at checkpoints:

* the **current segment** always lives at the configured log path and
  always begins with an ``open`` header; when the service writes a
  checkpoint it seals the segment with a ``checkpoint`` entry, archives
  it as ``<path>.<index>`` (zero-padded, monotonically increasing), and
  starts a fresh segment whose header names the checkpoint it resumes
  from — so crash recovery replays *one segment*, never the full
  history;
* every entry is flushed **and fsynced** before the append returns, so
  an entry the service acknowledged (a mutation ack, an epoch digest)
  survives a SIGKILL; the only loss mode is a *torn tail* — a partial
  final line from a crash mid-``write`` — which :func:`read_segment`
  detects, preserves in a ``.corrupt`` sidecar, and truncates away.

A torn tail is strictly an end-of-file phenomenon: a malformed line
*followed by* further entries is real corruption and stays a hard
error, because silently skipping interior entries would desynchronise
replay from the digests that follow.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.util.validation import ValidationError

#: Mutation-log schema version (segment ``open`` headers carry it).
LOG_SCHEMA_VERSION = 2

#: Width of the archived-segment numeric suffix (``serve.jsonl.000``).
SEGMENT_SUFFIX_WIDTH = 3

_SEGMENT_SUFFIX = re.compile(r"\.(\d{%d,})$" % SEGMENT_SUFFIX_WIDTH)


def segment_path(path: str, index: int) -> str:
    """The archive name of segment ``index`` of the log at ``path``."""
    return f"{path}.{int(index):0{SEGMENT_SUFFIX_WIDTH}d}"


def list_segments(path: str) -> List[Tuple[int, str]]:
    """Archived segments of the log at ``path``: ``(index, path)`` sorted.

    The current (unarchived) segment at ``path`` itself is *not*
    included — callers append it explicitly when walking the chain.
    """
    directory = os.path.dirname(path) or "."
    base = os.path.basename(path)
    found: List[Tuple[int, str]] = []
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    for name in names:
        if not name.startswith(base + "."):
            continue
        match = _SEGMENT_SUFFIX.search(name)
        if match is None or name != base + match.group(0):
            continue
        found.append((int(match.group(1)), os.path.join(directory, name)))
    return sorted(found)


@dataclass
class SegmentRead:
    """One parsed log segment, with torn-tail forensics."""

    path: str
    entries: List[Dict[str, object]] = field(default_factory=list)
    #: Raw bytes of a torn (partial, crash-interrupted) final line.
    torn_tail: Optional[bytes] = None
    #: Sidecar file the torn tail was preserved in (repair mode only).
    sidecar: Optional[str] = None
    #: True when the file itself was truncated back to the last good line.
    repaired: bool = False


def read_segment(path: str, *, repair: bool = False) -> SegmentRead:
    """Parse one JSONL log segment, tolerating a torn final line.

    A partial final line — no trailing newline, or bytes that do not
    parse as a JSON object — is the signature of a crash mid-append.
    The tail is reported in :attr:`SegmentRead.torn_tail`; with
    ``repair`` the raw bytes are additionally preserved in a
    ``<path>.corrupt`` sidecar and the segment file is truncated back to
    its last intact entry, so subsequent appends (and naive readers)
    see a well-formed log.  A malformed line *before* the final one is
    never repaired: that is interior corruption and raises.
    """
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError as error:
        raise ValidationError(f"cannot read mutation log {path!r}: {error}")
    result = SegmentRead(path=path)
    if not raw:
        return result
    lines = raw.split(b"\n")
    # A file ending in "\n" splits into [..., b""]; anything else left in
    # the final slot is an unterminated (torn) tail candidate.
    unterminated = lines.pop() if lines else b""
    good_bytes = 0
    for number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if stripped:
            entry = _parse_entry(line)
            if entry is None:
                if number == len(lines) and not unterminated:
                    # Terminated but unparseable final line: torn write
                    # that happened to include the newline of the next
                    # buffered entry, or a crash mid-flush.
                    result.torn_tail = line
                    break
                raise ValidationError(
                    f"{path}:{number}: not a valid log entry (interior corruption)"
                )
            result.entries.append(entry)
        good_bytes += len(line) + 1
    if unterminated:
        entry = _parse_entry(unterminated)
        if entry is not None:
            # Complete JSON missing only its newline (crash between
            # write and the terminator landing): keep the entry.
            result.entries.append(entry)
            good_bytes += len(unterminated)
        else:
            result.torn_tail = unterminated
    if result.torn_tail is not None and repair:
        sidecar = path + ".corrupt"
        with open(sidecar, "ab") as handle:
            handle.write(result.torn_tail)
            handle.write(b"\n")
            handle.flush()
            os.fsync(handle.fileno())
        with open(path, "r+b") as handle:
            handle.truncate(good_bytes)
            handle.flush()
            os.fsync(handle.fileno())
        result.sidecar = sidecar
        result.repaired = True
    return result


def _parse_entry(line: bytes) -> Optional[Dict[str, object]]:
    """The entry a log line holds, or None when it is not one."""
    try:
        entry = json.loads(line)
    except (UnicodeDecodeError, ValueError):
        return None
    if not isinstance(entry, dict) or "kind" not in entry:
        return None
    return entry


class LogWriter:
    """Append-only JSONL segment writer with per-entry durability.

    Every :meth:`append` flushes and fsyncs before returning: an entry
    the caller acted on (acknowledged a mutation, served an epoch) is on
    disk, and the worst a SIGKILL can leave behind is a torn final line
    that :func:`read_segment` repairs.  ``fsync=False`` turns the sync
    off for tests that measure something else.
    """

    def __init__(self, path: str, *, segment: int = 0, fsync: bool = True):
        self.path = path
        self.segment = int(segment)
        self._fsync = bool(fsync)
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._handle = open(path, "a")
        #: Entries appended to the current segment by this writer.
        self.appended = 0

    @property
    def closed(self) -> bool:
        return self._handle is None

    def append(self, entry: Dict[str, object]) -> None:
        """Durably append one entry (strict JSON, one line)."""
        if self._handle is None:
            raise ValidationError("the mutation log is closed")
        json.dump(entry, self._handle, separators=(",", ":"), allow_nan=False)
        self._handle.write("\n")
        self._handle.flush()
        if self._fsync:
            os.fsync(self._handle.fileno())
        self.appended += 1

    def rotate(self, header: Dict[str, object]) -> str:
        """Archive the current segment and start the next one.

        The open segment is closed and renamed to its archive name
        (``<path>.<segment>``), the directory entry is fsynced so the
        rename survives a crash, and a fresh segment opens at the base
        path with ``header`` as its first entry.  Returns the archive
        path.
        """
        if self._handle is None:
            raise ValidationError("the mutation log is closed")
        archived = segment_path(self.path, self.segment)
        self._handle.flush()
        if self._fsync:
            os.fsync(self._handle.fileno())
        self._handle.close()
        os.replace(self.path, archived)
        _fsync_dir(os.path.dirname(self.path) or ".")
        self.segment += 1
        self._handle = open(self.path, "a")
        self.appended = 0
        self.append(header)
        return archived

    def close(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            if self._fsync:
                os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None


def _fsync_dir(path: str) -> None:
    """Make a directory mutation (rename, create) durable."""
    try:
        fd = os.open(path or ".", os.O_RDONLY)
    except OSError:  # pragma: no cover - transient mount hiccup
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def compact_segments(path: str, *, keep_from: int) -> List[str]:
    """Delete archived segments with index < ``keep_from``.

    The compaction half of rotation: once a checkpoint anchored at
    segment ``keep_from`` is the oldest one worth keeping, every earlier
    segment is dead weight (recovery starts at a checkpoint, and
    full-history replay is explicitly traded away).  Returns the deleted
    paths.
    """
    removed: List[str] = []
    for index, archived in list_segments(path):
        if index < int(keep_from):
            try:
                os.unlink(archived)
            except FileNotFoundError:  # pragma: no cover - raced cleanup
                continue
            removed.append(archived)
    if removed:
        _fsync_dir(os.path.dirname(path) or ".")
    return removed


__all__ = [
    "LOG_SCHEMA_VERSION",
    "LogWriter",
    "SEGMENT_SUFFIX_WIDTH",
    "SegmentRead",
    "compact_segments",
    "list_segments",
    "read_segment",
    "segment_path",
]
