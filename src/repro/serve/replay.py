"""Replay a serve mutation log through the batch engine.

The serve scheduler's correctness contract: because it is only a
scheduler around the existing epoch kernels (one
:meth:`~repro.scenario.lifecycle.Session.step` per tick, mutations
committed inside ``begin_epoch``), feeding its mutation log back through
a fresh batch session must reproduce every served epoch byte-for-byte.
:func:`replay_log` does exactly that and compares the codec digest of
each replayed epoch against the digest the live service recorded.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.codec import epoch_record_digest
from repro.scenario.lifecycle import Mutation, Session
from repro.scenario.spec import ScenarioSpec
from repro.serve.service import LOG_SCHEMA_VERSION
from repro.util.validation import ValidationError


@dataclass
class ReplayResult:
    """The outcome of replaying one mutation log."""

    epochs: int = 0
    mutations: int = 0
    mismatches: List[Dict[str, object]] = field(default_factory=list)
    closed_cleanly: bool = False

    @property
    def ok(self) -> bool:
        """True when every served epoch replayed byte-identically."""
        return not self.mismatches

    def summary(self) -> str:
        status = "ok" if self.ok else f"{len(self.mismatches)} mismatched epochs"
        sealed = "sealed" if self.closed_cleanly else "unsealed"
        return (
            f"REPLAY epochs={self.epochs} mutations={self.mutations} "
            f"log={sealed} {status}"
        )


def read_log(path: str) -> List[Dict[str, object]]:
    """Parse one JSONL mutation log, checking the header."""
    entries: List[Dict[str, object]] = []
    try:
        handle = open(path)
    except OSError as error:
        raise ValidationError(f"cannot read mutation log {path!r}: {error}")
    with handle:
        for number, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValidationError(f"{path}:{number}: not valid JSON: {error}")
            if not isinstance(entry, dict) or "kind" not in entry:
                raise ValidationError(f"{path}:{number}: not a log entry")
            entries.append(entry)
    if not entries or entries[0].get("kind") != "open":
        raise ValidationError(f"{path}: log does not start with an open entry")
    schema = entries[0].get("schema")
    if schema != LOG_SCHEMA_VERSION:
        raise ValidationError(
            f"{path}: log schema {schema!r} is not the supported {LOG_SCHEMA_VERSION}"
        )
    return entries


def replay_log(
    path: str, *, batched: Optional[bool] = None
) -> ReplayResult:
    """Re-run a mutation log and digest-check every epoch.

    Parameters
    ----------
    path:
        The JSONL log ``repro serve --log`` wrote.
    batched:
        Kernel path for the replay engines; defaults to the path the
        serving process used (either must match — that equivalence has
        its own tests — so replaying a batched log sequentially is a
        legitimate cross-check).
    """
    entries = read_log(path)
    header = entries[0]
    spec = ScenarioSpec.from_dict(header["spec"])
    if batched is None:
        batched = bool(header.get("batched", True))
    result = ReplayResult()
    with Session.open(spec, batched=batched) as session:
        for entry in entries[1:]:
            kind = entry.get("kind")
            if kind == "mutate":
                session.mutate(Mutation.from_dict(entry["mutation"]))
                result.mutations += 1
            elif kind == "epoch":
                records = session.step()
                digest = epoch_record_digest(records)
                if digest != entry.get("digest"):
                    result.mismatches.append(
                        {
                            "epoch": entry.get("epoch"),
                            "served": entry.get("digest"),
                            "replayed": digest,
                        }
                    )
                result.epochs += 1
            elif kind == "close":
                result.closed_cleanly = True
            else:
                raise ValidationError(f"unknown log entry kind {kind!r}")
    return result


__all__ = ["ReplayResult", "read_log", "replay_log"]
