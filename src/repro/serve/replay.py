"""Replay a serve mutation log (or log chain) through the engines.

The serve scheduler's correctness contract: because it is only a
scheduler around the existing epoch kernels (one
:meth:`~repro.scenario.lifecycle.Session.step` per tick, mutations
committed inside ``begin_epoch``), feeding its mutation log back through
a fresh batch session must reproduce every served epoch byte-for-byte.
:func:`replay_log` does exactly that and compares the codec digest of
each replayed epoch against the digest the live service recorded.

Since the crash-safety work the log is *segmented*: checkpoints (and
crash recoveries) seal the current segment into ``<path>.NNN`` archives
and continue in a fresh file whose header names the state it resumes
from.  Replay handles both shapes:

* ``replay_log(path)`` on a log with archived siblings replays the whole
  **chain** from segment 0 — the full-history parity check CI runs;
* ``replay_log(path, checkpoint_dir=...)`` starts from the checkpoint
  the current segment's header names instead, replaying only the
  suffix — the bounded-recovery parity check;
* a torn final line (crash mid-append) is tolerated exactly the way
  :meth:`OverlayService.recover` tolerates it: reported and skipped via
  :func:`repro.serve.oplog.read_segment`, never a crash in
  ``json.loads``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.codec import epoch_record_digest
from repro.scenario.lifecycle import Mutation, Session
from repro.scenario.spec import ScenarioSpec
from repro.serve.oplog import LOG_SCHEMA_VERSION, list_segments, read_segment
from repro.util.validation import ValidationError


@dataclass
class ReplayResult:
    """The outcome of replaying one mutation log (or chain)."""

    epochs: int = 0
    mutations: int = 0
    mismatches: List[Dict[str, object]] = field(default_factory=list)
    closed_cleanly: bool = False
    #: Log segments replayed (1 for an unrotated log).
    segments: int = 1
    #: Epochs already inside the checkpoint the replay started from.
    checkpoint_epochs: int = 0
    #: Bytes of torn final line skipped (0 for a clean log).
    torn_tail_bytes: int = 0

    @property
    def ok(self) -> bool:
        """True when every served epoch replayed byte-identically."""
        return not self.mismatches

    def summary(self) -> str:
        status = "ok" if self.ok else f"{len(self.mismatches)} mismatched epochs"
        sealed = "sealed" if self.closed_cleanly else "unsealed"
        extra = ""
        if self.segments > 1:
            extra += f" segments={self.segments}"
        if self.checkpoint_epochs:
            extra += f" from_checkpoint={self.checkpoint_epochs}"
        if self.torn_tail_bytes:
            extra += f" torn_tail={self.torn_tail_bytes}"
        return (
            f"REPLAY epochs={self.epochs} mutations={self.mutations} "
            f"log={sealed}{extra} {status}"
        )


def read_log(path: str) -> List[Dict[str, object]]:
    """Parse one JSONL log segment, checking the header.

    Tolerates a torn final line (a crash mid-append) by dropping it —
    use :func:`repro.serve.oplog.read_segment` directly for the raw
    tail, or ``repair=True`` there to truncate it away on disk.
    """
    entries = read_segment(path).entries
    if not entries or entries[0].get("kind") != "open":
        raise ValidationError(f"{path}: log does not start with an open entry")
    schema = entries[0].get("schema")
    if schema not in (1, LOG_SCHEMA_VERSION):
        raise ValidationError(
            f"{path}: log schema {schema!r} is not the supported {LOG_SCHEMA_VERSION}"
        )
    return entries


def _chain_paths(path: str) -> List[str]:
    """Every segment of the log chain at ``path``, oldest first."""
    paths = [archived for _index, archived in list_segments(path)]
    if os.path.exists(path):
        paths.append(path)
    if not paths:
        raise ValidationError(f"cannot read mutation log {path!r}: no such file")
    return paths


def _apply_entries(
    session: Session,
    entries: List[Dict[str, object]],
    result: ReplayResult,
) -> None:
    """Feed one segment's entries (header excluded) through a session."""
    for entry in entries:
        kind = entry.get("kind")
        if kind == "mutate":
            session.mutate(Mutation.from_dict(entry["mutation"]))
            result.mutations += 1
        elif kind == "epoch":
            records = session.step()
            digest = epoch_record_digest(records)
            if digest != entry.get("digest"):
                result.mismatches.append(
                    {
                        "epoch": entry.get("epoch"),
                        "served": entry.get("digest"),
                        "replayed": digest,
                    }
                )
            result.epochs += 1
        elif kind == "checkpoint":
            continue
        elif kind == "close":
            result.closed_cleanly = True
        else:
            raise ValidationError(f"unknown log entry kind {kind!r}")


def replay_log(
    path: str,
    *,
    batched: Optional[bool] = None,
    checkpoint_dir: Optional[str] = None,
) -> ReplayResult:
    """Re-run a mutation log (chain) and digest-check every epoch.

    Parameters
    ----------
    path:
        The JSONL log ``repro serve --log`` wrote.  Archived segments
        (``<path>.NNN`` siblings from checkpoints or recoveries) are
        replayed first, automatically, so the check always covers the
        full served history.
    batched:
        Kernel path for the replay engines; defaults to the path the
        serving process used (either must match — that equivalence has
        its own tests — so replaying a batched log sequentially is a
        legitimate cross-check).
    checkpoint_dir:
        Start from the checkpoint the *current* segment's header names
        (loaded from this directory) instead of replaying the archived
        chain — the bounded-recovery parity mode.  Falls back to the
        full chain with a :class:`ValidationError` when the header names
        no checkpoint.
    """
    if checkpoint_dir is not None:
        return _replay_from_checkpoint(path, checkpoint_dir, batched)
    paths = _chain_paths(path)
    result = ReplayResult(segments=len(paths))
    header = read_log(paths[0])[0]
    spec = ScenarioSpec.from_dict(header["spec"])
    if batched is None:
        batched = bool(header.get("batched", True))
    first_resume = header.get("resumed_from")
    if isinstance(first_resume, dict) and int(
        first_resume.get("epochs_completed", 0)
    ):
        raise ValidationError(
            f"{paths[0]}: the oldest surviving segment resumes from "
            f"{first_resume.get('epochs_completed')} epochs — earlier segments "
            "were compacted away; replay with checkpoint_dir instead"
        )
    with Session.open(spec, batched=batched) as session:
        for segment_file in paths:
            entries = read_log(segment_file)
            read = read_segment(segment_file)
            if read.torn_tail is not None:
                result.torn_tail_bytes += len(read.torn_tail)
            result.closed_cleanly = False
            # Replayed epochs count monotonically; a recovered segment's
            # entries start exactly where the previous segment's replay
            # left the session, so no epoch filtering is needed here.
            _apply_entries(session, entries[1:], result)
    return result


def _replay_from_checkpoint(
    path: str, checkpoint_dir: str, batched: Optional[bool]
) -> ReplayResult:
    from repro.serve.checkpoint import CheckpointManager

    entries = read_log(path)
    header = entries[0]
    read = read_segment(path)
    if batched is None:
        batched = bool(header.get("batched", True))
    resumed = header.get("resumed_from")
    if not isinstance(resumed, dict) or not resumed.get("checkpoint"):
        raise ValidationError(
            f"{path}: segment header names no checkpoint to resume from; "
            "drop checkpoint_dir to replay the full chain"
        )
    state = CheckpointManager(checkpoint_dir).load(str(resumed["checkpoint"]))
    session: Session = state.session
    session.batch.batched = bool(batched)
    result = ReplayResult(
        segments=1,
        checkpoint_epochs=state.epochs_completed,
        torn_tail_bytes=len(read.torn_tail or b""),
    )
    try:
        _apply_entries(session, entries[1:], result)
    finally:
        session.close()
    return result


def session_from_segments(
    path: str, *, through_segment: int, batched: bool
) -> Session:
    """Rebuild the session state by replaying archived segments 0..N.

    The recovery fallback for a damaged checkpoint: replays every
    archived segment up to and including ``through_segment`` and returns
    the **open** session (caller owns closing it).  Digest mismatches
    raise — a diverged rebuild is worse than no rebuild.
    """
    archives = {index: p for index, p in list_segments(path)}
    expected = list(range(int(through_segment) + 1))
    missing = [index for index in expected if index not in archives]
    if missing:
        raise ValidationError(
            f"log chain for {path!r} is incomplete: missing archived "
            f"segment(s) {missing} — cannot rebuild state by replay"
        )
    header = read_log(archives[0])[0]
    spec = ScenarioSpec.from_dict(header["spec"])
    session = Session.open(spec, batched=batched)
    try:
        for index in expected:
            result = ReplayResult()
            _apply_entries(session, read_log(archives[index])[1:], result)
            if not result.ok:
                raise ValidationError(
                    f"segment {index} diverged during chain rebuild: "
                    f"{result.mismatches[0]}"
                )
    except BaseException:
        session.close()
        raise
    return session


def collect_windows(
    path: str, *, through_segment: int
) -> Tuple[Dict[int, str], Dict[str, int]]:
    """Epoch-digest and dedupe windows from archived segments 0..N.

    Companion to :func:`session_from_segments`: rebuilds the soft state
    a checkpoint would have carried (recent epoch digests for idempotent
    ``step`` replies, idempotency keys for mutation dedupe) so recovery
    through the chain-replay fallback loses neither.
    """
    digests: Dict[int, str] = {}
    dedupe: Dict[str, int] = {}
    archives = {index: p for index, p in list_segments(path)}
    for index in range(int(through_segment) + 1):
        segment_file = archives.get(index)
        if segment_file is None:
            continue
        for entry in read_segment(segment_file).entries:
            kind = entry.get("kind")
            if kind == "epoch":
                digests[int(entry.get("epoch", 0))] = str(entry.get("digest"))
            elif kind == "mutate" and isinstance(entry.get("idem"), str):
                dedupe[entry["idem"]] = int(entry.get("applied_epoch", 0))
    return digests, dedupe


__all__ = [
    "ReplayResult",
    "collect_windows",
    "read_log",
    "replay_log",
    "session_from_segments",
]
