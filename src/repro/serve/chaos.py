"""``repro chaos``: SIGKILL the server mid-load, prove nothing was lost.

The harness is the end-to-end proof of the crash-safety design.  One run:

1. loads a chaos scenario (a ScenarioSpec plus a fault plan: how many
   epochs to drive, how often to mutate, how many SIGKILLs to inject);
2. computes the **reference**: the same deterministic op plan applied to
   an in-process :class:`OverlayService` — no transport, no faults —
   recording every epoch digest and the final lookup values;
3. runs the **chaos side**: a real ``repro serve`` child under a
   :class:`~repro.serve.supervise.Supervisor`, driven over a unix socket
   by a retrying :class:`~repro.serve.client.ServeClient`, with the
   child SIGKILL-ed at seed-chosen points between acknowledged ops; the
   supervisor restarts it and ``OverlayService.recover`` restores the
   session from checkpoint + log suffix;
4. verifies, against the reference and the on-disk artifacts:

   * **digest parity** — every epoch the chaos side committed matches
     the uninterrupted run byte-for-byte (the acceptance criterion);
   * **zero acknowledged loss** — every mutation the client got an ack
     for appears exactly once in the recovered log chain (exactly once:
     dedupe also proved no double-apply), and every acknowledged epoch
     digest survived;
   * **bounded replay** — each child ``RECOVERY`` line reports a replay
     of at most one checkpoint interval;
   * **replay parity** — ``replay_log`` over the rotated chain
     reproduces the full history (the same check CI's serve-smoke runs);
   * **final-state parity** — lookups after the last kill equal the
     reference's.

The ``CHAOS ...`` summary line is machine-greppable for CI, in the
family of ``SERVE``/``SWEEP``/``REPLAY``/``RECOVERY`` lines.
"""

from __future__ import annotations

import json
import os
import random
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.scenario.spec import ScenarioSpec
from repro.serve.client import ServeClient
from repro.serve.oplog import list_segments, read_segment
from repro.serve.replay import replay_log
from repro.serve.service import OverlayService
from repro.serve.supervise import Supervisor
from repro.util.validation import ValidationError


@dataclass(frozen=True)
class ChaosScenario:
    """One chaos run's plan: the scenario plus the fault schedule."""

    spec: ScenarioSpec
    #: Seeds the op plan, the kill points, and the client jitter.
    seed: int = 0
    #: Epochs the plan drives (each an explicit idempotent ``step``).
    epochs: int = 12
    #: Enqueue one mutation before every Nth step (0 = never).
    mutate_every: int = 3
    #: Lookup pairs measured after each step.
    lookups_per_epoch: int = 8
    #: SIGKILLs injected at seed-chosen points between acknowledged ops.
    kills: int = 3
    #: Child checkpoint cadence (epochs); bounds every recovery replay.
    checkpoint_every: int = 3

    @classmethod
    def load(cls, path: str) -> "ChaosScenario":
        """Read a ``scenarios/chaos_*.json`` file.

        The file is an envelope: a ``scenario`` object (inline
        ScenarioSpec) or ``scenario_path`` (relative to the chaos file),
        plus any of the fault-plan fields above.
        """
        try:
            with open(path) as handle:
                data = json.load(handle)
        except OSError as error:
            raise ValidationError(f"cannot read chaos scenario {path!r}: {error}")
        except json.JSONDecodeError as error:
            raise ValidationError(f"{path} is not valid JSON: {error}")
        if not isinstance(data, dict):
            raise ValidationError(f"{path} must hold a JSON object")
        if ("scenario" in data) == ("scenario_path" in data):
            raise ValidationError(
                f"{path}: pass exactly one of 'scenario' (inline spec) or "
                "'scenario_path'"
            )
        if "scenario" in data:
            spec = ScenarioSpec.from_dict(data["scenario"])
        else:
            spec_path = os.path.join(
                os.path.dirname(os.path.abspath(path)), str(data["scenario_path"])
            )
            try:
                with open(spec_path) as handle:
                    spec = ScenarioSpec.from_dict(json.load(handle))
            except OSError as error:
                raise ValidationError(f"cannot read {spec_path!r}: {error}")
        known = {
            "seed",
            "epochs",
            "mutate_every",
            "lookups_per_epoch",
            "kills",
            "checkpoint_every",
        }
        unknown = set(data) - known - {"scenario", "scenario_path", "comment"}
        if unknown:
            raise ValidationError(f"{path}: unknown chaos fields {sorted(unknown)}")
        scenario = cls(spec=spec, **{k: int(data[k]) for k in known if k in data})
        if scenario.epochs < 1:
            raise ValidationError("chaos scenarios need epochs >= 1")
        if scenario.kills >= scenario.epochs:
            raise ValidationError(
                f"{scenario.kills} kills need more than {scenario.epochs} epochs "
                "of plan to land between"
            )
        return scenario


@dataclass
class ChaosReport:
    """What one chaos run proved (and how much fault it absorbed)."""

    kills: int = 0
    recoveries: int = 0
    epochs: int = 0
    acked_mutations: int = 0
    #: Acked mutations missing from the recovered log chain (must be 0).
    lost_mutations: int = 0
    #: Acked mutations appearing more than once (dedupe failed; must be 0).
    duplicated_mutations: int = 0
    #: Epoch digests differing from the uninterrupted reference.
    digest_mismatches: int = 0
    #: Final lookup values differing from the reference.
    lookup_mismatches: int = 0
    #: RECOVERY lines whose replay exceeded one checkpoint interval.
    unbounded_recoveries: int = 0
    replay_ok: bool = False
    #: Client-side fault absorption (for the curious).
    client_retries: int = 0
    sheds_seen: int = 0
    supervisor_restarts: int = 0
    recovery_lines: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            self.lost_mutations == 0
            and self.duplicated_mutations == 0
            and self.digest_mismatches == 0
            and self.lookup_mismatches == 0
            and self.unbounded_recoveries == 0
            and self.replay_ok
            and self.recoveries >= self.kills
        )

    def summary(self) -> str:
        return (
            f"CHAOS kills={self.kills} recoveries={self.recoveries} "
            f"epochs={self.epochs} acked={self.acked_mutations} "
            f"lost={self.lost_mutations} dup={self.duplicated_mutations} "
            f"digest_mismatch={self.digest_mismatches} "
            f"lookup_mismatch={self.lookup_mismatches} "
            f"unbounded={self.unbounded_recoveries} "
            f"replay={'ok' if self.replay_ok else 'FAILED'} "
            f"{'ok' if self.ok else 'FAILED'}"
        )


# --------------------------------------------------------------------- #
# The deterministic op plan
# --------------------------------------------------------------------- #
def build_plan(scenario: ChaosScenario) -> List[Tuple[str, object]]:
    """The op sequence both sides execute, fully determined by the seed.

    Per epoch: optionally one mutation (drift or a single-node rewire —
    membership stays fixed so the lookup pairs remain valid), one
    idempotent ``step`` carrying the expected epoch count, then one
    ``lookup_batch`` probe.
    """
    rng = random.Random(scenario.seed)
    n = scenario.spec.n
    plan: List[Tuple[str, object]] = []
    for epoch in range(scenario.epochs):
        if scenario.mutate_every and epoch and epoch % scenario.mutate_every == 0:
            if rng.random() < 0.5:
                mutation: Dict[str, object] = {
                    "kind": "drift",
                    "steps": rng.randint(1, 3),
                }
            else:
                mutation = {"kind": "rewire", "nodes": [rng.randrange(n)]}
            plan.append(("mutate", {"mutation": mutation, "idem": f"chaos-{epoch}"}))
        plan.append(("step", epoch))
        pairs = []
        while len(pairs) < scenario.lookups_per_epoch:
            src, dst = rng.randrange(n), rng.randrange(n)
            if src != dst:
                pairs.append([src, dst])
        plan.append(("lookup", pairs))
    return plan


def kill_points(scenario: ChaosScenario) -> List[int]:
    """Plan indices (of acknowledged ``step`` ops) after which to SIGKILL.

    Drawn without replacement from the interior steps — never after the
    final step, so the run always ends with live verification traffic
    after the last recovery.
    """
    rng = random.Random(scenario.seed ^ 0xC4A0)
    candidates = list(range(scenario.epochs - 1))
    rng.shuffle(candidates)
    return sorted(candidates[: scenario.kills])


# --------------------------------------------------------------------- #
# Reference (uninterrupted) side
# --------------------------------------------------------------------- #
def run_reference(
    scenario: ChaosScenario, *, batched: bool = True
) -> Tuple[Dict[int, str], List[List[object]]]:
    """Digests and lookup values of the fault-free in-process run."""
    service = OverlayService(scenario.spec, batched=batched)
    digests: Dict[int, str] = {}
    lookups: List[List[object]] = []
    try:
        for op, arg in build_plan(scenario):
            if op == "mutate":
                service.mutate(dict(arg["mutation"]), idem=arg["idem"])
            elif op == "step":
                payload = service.step(expect=int(arg))
                digests[int(payload["epoch"])] = str(payload["digest"])
            else:
                lookups.append(service.lookup_batch(arg)["values"])
    finally:
        service.close()
    return digests, lookups


# --------------------------------------------------------------------- #
# Chaos side
# --------------------------------------------------------------------- #
def run_chaos(
    scenario: ChaosScenario,
    workdir: str,
    *,
    batched: bool = True,
    connect_timeout: float = 60.0,
) -> ChaosReport:
    """Run the full harness in ``workdir``; returns the verified report.

    Artifacts land in ``workdir`` (spec/log/checkpoints/child output)
    and are left behind for post-mortems.
    """
    os.makedirs(workdir, exist_ok=True)
    spec_path = os.path.join(workdir, "scenario.json")
    with open(spec_path, "w") as handle:
        handle.write(scenario.spec.to_json() + "\n")
    socket_path = os.path.join(workdir, "serve.sock")
    log_path = os.path.join(workdir, "serve.jsonl")
    checkpoint_dir = os.path.join(workdir, "checkpoints")
    child_out_path = os.path.join(workdir, "serve.out")

    command = [
        sys.executable,
        "-m",
        "repro.cli",
        "serve",
        "--spec",
        spec_path,
        "--socket",
        socket_path,
        "--log",
        log_path,
        "--checkpoint-dir",
        checkpoint_dir,
        "--checkpoint-every",
        str(scenario.checkpoint_every),
        "--warmup-epochs",
        "0",
    ]
    if not batched:
        command.append("--sequential")

    report = ChaosReport()
    current_child: List[subprocess.Popen] = []
    child_out = open(child_out_path, "w")
    supervisor = Supervisor(
        command,
        backoff_base=0.1,
        backoff_cap=1.0,
        stable_after=2.0,
        on_spawn=lambda child: current_child.append(child),
        stdout=child_out,
    )
    thread = threading.Thread(target=supervisor.run, daemon=True)
    thread.start()

    reference_digests, reference_lookups = run_reference(scenario, batched=batched)
    plan = build_plan(scenario)
    kills = set(kill_points(scenario))

    client = _connect_with_patience(
        socket_path, timeout=connect_timeout, seed=scenario.seed
    )
    chaos_digests: Dict[int, str] = {}
    chaos_lookups: List[List[object]] = []
    acked_idems: List[str] = []
    try:
        for op, arg in plan:
            if op == "mutate":
                client.request(
                    "mutate", mutation=dict(arg["mutation"]), idem=arg["idem"]
                )
                acked_idems.append(str(arg["idem"]))
                report.acked_mutations += 1
            elif op == "step":
                epoch = int(arg)
                reply = client.step(expect=epoch)
                chaos_digests[int(reply["epoch"])] = str(reply["digest"])
                if epoch in kills:
                    _kill_current(current_child)
                    report.kills += 1
            else:
                chaos_lookups.append(client.lookup_batch(arg)["values"])
        client.request("shutdown", idempotent=False)
    finally:
        client.close()
    thread.join(timeout=30.0)
    if thread.is_alive():  # pragma: no cover - supervisor wedged
        supervisor.request_stop()
        thread.join(timeout=10.0)
    child_out.close()
    report.supervisor_restarts = supervisor.report.restarts
    report.client_retries = client.retried
    report.sheds_seen = client.sheds_seen

    _verify(
        report,
        log_path=log_path,
        child_out_path=child_out_path,
        checkpoint_every=scenario.checkpoint_every,
        reference_digests=reference_digests,
        reference_lookups=reference_lookups,
        chaos_digests=chaos_digests,
        chaos_lookups=chaos_lookups,
        acked_idems=acked_idems,
        batched=batched,
    )
    return report


def _connect_with_patience(
    socket_path: str, *, timeout: float, seed: int
) -> ServeClient:
    """Connect to the child's socket, waiting out its first startup."""
    deadline = time.monotonic() + timeout
    while True:
        try:
            return ServeClient(
                socket_path=socket_path,
                max_retries=12,
                retry_seed=seed,
            )
        except (OSError, ValidationError):
            if time.monotonic() >= deadline:
                raise ValidationError(
                    f"chaos server never came up on {socket_path!r} "
                    f"within {timeout:.0f}s"
                )
            time.sleep(0.1)


def _kill_current(children: List[subprocess.Popen]) -> None:
    """SIGKILL the supervisor's live child (the whole point)."""
    for child in reversed(children):
        if child.poll() is None:
            try:
                os.kill(child.pid, signal.SIGKILL)
            except ProcessLookupError:  # pragma: no cover - lost the race
                continue
            child.wait()
            return


def _verify(
    report: ChaosReport,
    *,
    log_path: str,
    child_out_path: str,
    checkpoint_every: int,
    reference_digests: Dict[int, str],
    reference_lookups: List[List[object]],
    chaos_digests: Dict[int, str],
    chaos_lookups: List[List[object]],
    acked_idems: List[str],
    batched: bool,
) -> None:
    """Fill the report's verification fields from the run's artifacts."""
    # Digest parity: every epoch either side committed, byte-identical.
    report.epochs = len(chaos_digests)
    for epoch, digest in sorted(reference_digests.items()):
        if chaos_digests.get(epoch) != digest:
            report.digest_mismatches += 1

    # Final-state parity: the lookup probes, frame by frame.
    if len(chaos_lookups) != len(reference_lookups):
        report.lookup_mismatches += abs(
            len(chaos_lookups) - len(reference_lookups)
        )
    for ref, got in zip(reference_lookups, chaos_lookups):
        if ref != got:
            report.lookup_mismatches += 1

    # Zero acknowledged loss, exactly once: scan the recovered chain.
    counts: Dict[str, int] = {}
    for _index, segment_file in list_segments(log_path):
        _count_idems(segment_file, counts)
    if os.path.exists(log_path):
        _count_idems(log_path, counts)
    for idem in acked_idems:
        seen = counts.get(idem, 0)
        if seen == 0:
            report.lost_mutations += 1
        elif seen > 1:
            report.duplicated_mutations += 1

    # Bounded replay: the child printed one RECOVERY line per restart.
    try:
        with open(child_out_path) as handle:
            for line in handle:
                if line.startswith("RECOVERY "):
                    report.recovery_lines.append(line.rstrip())
                    report.recoveries += 1
                    fields = dict(
                        part.split("=", 1)
                        for part in line.split()[1:]
                        if "=" in part
                    )
                    replayed = int(fields.get("replayed_epochs", 0))
                    if fields.get("bounded") != "yes" or (
                        checkpoint_every > 0 and replayed > checkpoint_every
                    ):
                        report.unbounded_recoveries += 1
    except OSError:
        pass

    # Replay parity over the rotated chain (same check as serve-smoke).
    try:
        report.replay_ok = replay_log(log_path, batched=batched).ok
    except ValidationError:
        report.replay_ok = False


def _count_idems(path: str, counts: Dict[str, int]) -> None:
    for entry in read_segment(path).entries:
        if entry.get("kind") == "mutate" and isinstance(entry.get("idem"), str):
            counts[entry["idem"]] = counts.get(entry["idem"], 0) + 1


__all__ = [
    "ChaosReport",
    "ChaosScenario",
    "build_plan",
    "kill_points",
    "run_chaos",
    "run_reference",
]
