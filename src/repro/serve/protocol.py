"""The newline-delimited JSON protocol of the live overlay service.

One request per line, one JSON object per request; the server answers
with one JSON object per line.  Responses echo the request's ``id`` (if
any) and carry ``ok``; subscription events are pushed lines without an
``id``, tagged with an ``event`` key instead, so a client multiplexing
requests and a subscription on one connection can tell them apart.

Requests::

    {"op": "lookup", "src": 3, "dst": 17, "path": true, "engine": "..."}
    {"op": "lookup_batch", "pairs": [[3, 17], [4, 9]], "engine": "..."}
    {"op": "mutate", "mutation": {"kind": "leave", "nodes": [5]}}
    {"op": "step"}
    {"op": "subscribe"}
    {"op": "snapshot"}
    {"op": "stats"}
    {"op": "metrics"}
    {"op": "shutdown"}

Every lookup answer is version-stamped (``epoch``, ``version``) so a
read served between a mutation being accepted and its epoch committing
is attributable to a specific overlay state — the stale-read discipline
the session-control API is designed against.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Union

from repro.util.validation import ValidationError

#: Protocol schema version, reported by ``snapshot`` and ``stats``.
PROTOCOL_VERSION = 1

#: Operations a request may name.
OPS = (
    "lookup",
    "lookup_batch",
    "mutate",
    "step",
    "subscribe",
    "snapshot",
    "stats",
    "metrics",
    "shutdown",
)

#: Maximum accepted request line, to bound a rogue client's memory use.
MAX_LINE_BYTES = 4 * 1024 * 1024


class ProtocolError(ValidationError):
    """A malformed request (bad JSON, unknown op, missing fields)."""


def parse_request(line: Union[str, bytes]) -> Dict[str, object]:
    """Parse one request line into its dict form (op-checked)."""
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as error:
            raise ProtocolError(f"request is not valid UTF-8: {error}")
    try:
        request = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"request is not valid JSON: {error}")
    if not isinstance(request, dict):
        raise ProtocolError(
            f"a request must be a JSON object, got {type(request).__name__}"
        )
    op = request.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; expected one of {list(OPS)}")
    request_id = request.get("id")
    if request_id is not None and not isinstance(request_id, (str, int)):
        raise ProtocolError("request id must be a string or integer")
    return request


def encode(message: Dict[str, object]) -> bytes:
    """One response/event line: compact JSON plus the newline framing.

    Strict JSON (``allow_nan=False``): non-finite floats must have been
    mapped through :func:`repro.core.codec.encode_float` upstream, and a
    leak is a bug worth raising on rather than emitting unparseable
    ``NaN`` tokens.
    """
    return (json.dumps(message, separators=(",", ":"), allow_nan=False) + "\n").encode()


def response(
    request_id: Optional[object] = None, **fields: object
) -> Dict[str, object]:
    """A success response (``ok`` true, request ``id`` echoed)."""
    message: Dict[str, object] = {"ok": True}
    if request_id is not None:
        message["id"] = request_id
    message.update(fields)
    return message


def error_response(
    request_id: Optional[object], code: str, message: str
) -> Dict[str, object]:
    """An error response carrying a machine-readable ``code``."""
    payload: Dict[str, object] = {"ok": False, "error": code, "message": message}
    if request_id is not None:
        payload["id"] = request_id
    return payload


__all__ = [
    "MAX_LINE_BYTES",
    "OPS",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "encode",
    "error_response",
    "parse_request",
    "response",
]
