"""Atomic, digest-verified session checkpoints for ``repro serve``.

A checkpoint is the crash-safety anchor of the serve stack: a byte-exact
snapshot of the live :class:`~repro.scenario.lifecycle.Session` (engines,
wirings, RNG streams — captured via pickle, which round-trips numpy
generator state bit-for-bit) wrapped in a schema-versioned JSON envelope
carrying everything recovery needs *besides* the engine state: the spec,
the kernel path, the epoch/segment coordinates, the recent epoch digests
(for idempotent ``step`` replies), and the mutation dedupe window (so a
retried mutation stays exactly-once across a crash).

Durability reuses the distributed sweep layer's hardened filesystem
primitives: every checkpoint is written through
:meth:`repro.sweep.dist.backend.SharedFSBackend.write_atomic` — content
fsynced before an atomic rename, directory fsynced after — so a reader
never observes a half-written checkpoint and a SIGKILL never destroys
the previous one.  The pickle payload additionally carries its own
blake2b digest; :meth:`CheckpointManager.latest` skips (with a warning
list) any file that fails schema, digest, or unpickling checks, falling
back to the next-newest, so one corrupt file degrades recovery instead
of blocking it.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sweep.dist.backend import SharedFSBackend
from repro.util.validation import ValidationError

#: Schema version of the checkpoint envelope.
CHECKPOINT_SCHEMA_VERSION = 1

_NAME = re.compile(r"^ckpt-(\d{8})-(\d{4})\.json$")


def checkpoint_name(epochs: int, segment: int) -> str:
    """Canonical file name of the checkpoint at an (epoch, segment) point."""
    return f"ckpt-{int(epochs):08d}-{int(segment):04d}.json"


def payload_digest(blob: bytes) -> str:
    """The integrity digest stored alongside the pickled session."""
    return hashlib.blake2b(blob, digest_size=16).hexdigest()


@dataclass
class CheckpointState:
    """One loaded (validated, unpickled) checkpoint."""

    name: str
    session: object
    spec: Dict[str, object]
    batched: bool
    epochs_completed: int
    segment: int
    #: Recent epoch digests (epoch index -> digest) at snapshot time.
    epoch_digests: Dict[int, str] = field(default_factory=dict)
    #: Idempotency-key dedupe window (key -> applied_epoch) at snapshot time.
    dedupe: Dict[str, int] = field(default_factory=dict)


class CheckpointManager:
    """Write, enumerate, validate, load, and prune checkpoints in one dir."""

    def __init__(self, directory: str):
        self.directory = str(directory)
        # The shared-fs backend is reused purely for its durability
        # discipline (fsync file before atomic rename, directory after);
        # on a local disk the fsyncs are cheap and the semantics are the
        # ones crash recovery needs.
        self._backend = SharedFSBackend(self.directory)
        self._backend.makedirs()

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def write(
        self,
        session: object,
        *,
        spec: Dict[str, object],
        batched: bool,
        epochs_completed: int,
        segment: int,
        epoch_digests: Optional[Dict[int, str]] = None,
        dedupe: Optional[Dict[str, int]] = None,
    ) -> str:
        """Atomically persist one checkpoint; returns its file name."""
        blob = pickle.dumps(session, protocol=pickle.HIGHEST_PROTOCOL)
        envelope = {
            "schema": CHECKPOINT_SCHEMA_VERSION,
            "spec": spec,
            "batched": bool(batched),
            "epochs_completed": int(epochs_completed),
            "segment": int(segment),
            "epoch_digests": {
                str(epoch): digest
                for epoch, digest in sorted((epoch_digests or {}).items())
            },
            "dedupe": {key: int(epoch) for key, epoch in (dedupe or {}).items()},
            "payload_digest": payload_digest(blob),
            "payload": base64.b64encode(blob).decode("ascii"),
        }
        name = checkpoint_name(epochs_completed, segment)
        self._backend.write_atomic(
            name,
            json.dumps(envelope, separators=(",", ":"), sort_keys=True),
            f".{name}.{os.getpid()}.tmp",
        )
        return name

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def names(self) -> List[str]:
        """Checkpoint file names present, oldest first."""
        return sorted(
            name for name in self._backend.listdir() if _NAME.match(name)
        )

    def load(self, name: str) -> CheckpointState:
        """Validate and unpickle one checkpoint by file name."""
        text = self._backend.read_text(name)
        if text is None:
            raise ValidationError(
                f"checkpoint {name!r} not found in {self.directory!r}"
            )
        try:
            envelope = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValidationError(f"checkpoint {name!r} is not valid JSON: {error}")
        if not isinstance(envelope, dict):
            raise ValidationError(f"checkpoint {name!r} is not a JSON object")
        schema = envelope.get("schema")
        if schema != CHECKPOINT_SCHEMA_VERSION:
            raise ValidationError(
                f"checkpoint {name!r} has schema {schema!r}; this reader "
                f"supports version {CHECKPOINT_SCHEMA_VERSION}"
            )
        try:
            blob = base64.b64decode(envelope["payload"])
        except (KeyError, TypeError, ValueError) as error:
            raise ValidationError(f"checkpoint {name!r} payload is malformed: {error}")
        if payload_digest(blob) != envelope.get("payload_digest"):
            raise ValidationError(
                f"checkpoint {name!r} failed its integrity digest "
                "(truncated or tampered payload)"
            )
        try:
            session = pickle.loads(blob)
        except Exception as error:  # noqa: BLE001 - any unpickle failure invalidates
            raise ValidationError(f"checkpoint {name!r} failed to unpickle: {error}")
        try:
            return CheckpointState(
                name=name,
                session=session,
                spec=dict(envelope["spec"]),
                batched=bool(envelope["batched"]),
                epochs_completed=int(envelope["epochs_completed"]),
                segment=int(envelope["segment"]),
                epoch_digests={
                    int(epoch): str(digest)
                    for epoch, digest in dict(envelope.get("epoch_digests", {})).items()
                },
                dedupe={
                    str(key): int(epoch)
                    for key, epoch in dict(envelope.get("dedupe", {})).items()
                },
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ValidationError(f"checkpoint {name!r} envelope is malformed: {error}")

    def latest(self) -> Optional[CheckpointState]:
        """The newest checkpoint that passes validation, or None.

        Invalid files (bad schema, failed digest, unpicklable payload)
        are skipped newest-to-oldest; what was skipped is recorded in
        :attr:`skipped` for the caller's warning line.
        """
        self.skipped: List[str] = []
        for name in reversed(self.names()):
            try:
                return self.load(name)
            except ValidationError as error:
                self.skipped.append(f"{name}: {error}")
        return None

    # ------------------------------------------------------------------ #
    # Retention
    # ------------------------------------------------------------------ #
    def prune(self, keep: int) -> List[str]:
        """Delete all but the newest ``keep`` checkpoints (0 keeps all).

        Returns the deleted names.  The caller owning the mutation log
        pairs this with :func:`repro.serve.oplog.compact_segments` so
        log segments older than the oldest retained checkpoint go too.
        """
        keep = int(keep)
        if keep <= 0:
            return []
        names = self.names()
        removed = names[:-keep] if len(names) > keep else []
        for name in removed:
            self._backend.unlink(name)
        return removed

    def oldest_segment(self) -> Optional[int]:
        """Segment index of the oldest retained checkpoint, or None."""
        names = self.names()
        if not names:
            return None
        match = _NAME.match(names[0])
        return int(match.group(2)) if match else None


__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointManager",
    "CheckpointState",
    "checkpoint_name",
    "payload_digest",
]
