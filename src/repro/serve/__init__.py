"""``repro serve``: the live overlay service.

The batch pipeline answers "what does this scenario converge to"; this
package answers "what is the overlay doing *right now*".  It holds a
:class:`~repro.scenario.lifecycle.Session` live, advances epochs on a
cadence (or on explicit ``step`` requests), and speaks a
newline-delimited JSON protocol over a local socket:

* :mod:`~repro.serve.protocol` — the wire format (ops, framing, errors);
* :mod:`~repro.serve.service` — the synchronous core: version-stamped
  route lookups off the shared residual cache, mutation queueing, the
  replayable JSONL mutation log;
* :mod:`~repro.serve.server` — the asyncio transport;
* :mod:`~repro.serve.client` — a blocking client;
* :mod:`~repro.serve.load` — the million-lookup workload generator
  (``repro serve-load``);
* :mod:`~repro.serve.replay` — byte-identical log replay through the
  batch engine (``repro serve-replay``).

The service is a scheduler around the existing epoch kernels, never a
second engine: everything it serves is reproducible offline from its
mutation log.
"""

from repro.serve.client import ServeClient
from repro.serve.load import LoadReport, TRAFFIC_MODELS, format_summary, run_load
from repro.serve.protocol import OPS, PROTOCOL_VERSION, ProtocolError
from repro.serve.replay import ReplayResult, replay_log
from repro.serve.server import OverlayServer, run_server, start_background_server
from repro.serve.service import LOG_SCHEMA_VERSION, OverlayService, ServeError

__all__ = [
    "LOG_SCHEMA_VERSION",
    "LoadReport",
    "OPS",
    "OverlayServer",
    "OverlayService",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ReplayResult",
    "ServeClient",
    "ServeError",
    "TRAFFIC_MODELS",
    "format_summary",
    "replay_log",
    "run_load",
    "run_server",
    "start_background_server",
]
