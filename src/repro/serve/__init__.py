"""``repro serve``: the live overlay service.

The batch pipeline answers "what does this scenario converge to"; this
package answers "what is the overlay doing *right now*".  It holds a
:class:`~repro.scenario.lifecycle.Session` live, advances epochs on a
cadence (or on explicit ``step`` requests), and speaks a
newline-delimited JSON protocol over a local socket:

* :mod:`~repro.serve.protocol` — the wire format (ops, framing, errors);
* :mod:`~repro.serve.service` — the synchronous core: version-stamped
  route lookups off the shared residual cache, mutation queueing, the
  replayable JSONL mutation log, idempotent mutation/step handling, and
  crash recovery (``OverlayService.recover``);
* :mod:`~repro.serve.oplog` — segmented crash-tolerant log I/O
  (fsynced appends, checkpoint-anchored rotation, torn-tail repair);
* :mod:`~repro.serve.checkpoint` — atomic digest-verified session
  snapshots;
* :mod:`~repro.serve.server` — the asyncio transport, with bounded
  request admission (``busy`` shedding) and graceful SIGTERM drain;
* :mod:`~repro.serve.client` — a blocking client with backoff+jitter
  retries, idempotency keys, and per-request deadlines;
* :mod:`~repro.serve.supervise` — the ``--supervise`` restart loop;
* :mod:`~repro.serve.load` — the million-lookup workload generator
  (``repro serve-load``);
* :mod:`~repro.serve.replay` — byte-identical log(-chain) replay
  through the batch engine (``repro serve-replay``);
* :mod:`~repro.serve.chaos` — the ``repro chaos`` SIGKILL harness
  proving zero acknowledged loss and digest parity under crashes.

The service is a scheduler around the existing epoch kernels, never a
second engine: everything it serves is reproducible offline from its
mutation log.
"""

from repro.serve.chaos import ChaosReport, ChaosScenario, run_chaos
from repro.serve.checkpoint import CheckpointManager, CheckpointState
from repro.serve.client import RetryBudgetExceeded, ServeClient
from repro.serve.load import LoadReport, TRAFFIC_MODELS, format_summary, run_load
from repro.serve.oplog import LogWriter, read_segment
from repro.serve.protocol import OPS, PROTOCOL_VERSION, ProtocolError
from repro.serve.replay import ReplayResult, replay_log
from repro.serve.server import OverlayServer, run_server, start_background_server
from repro.serve.service import (
    LOG_SCHEMA_VERSION,
    OverlayService,
    RecoveryError,
    RecoveryReport,
    ServeError,
)
from repro.serve.supervise import Supervisor, SupervisorReport

__all__ = [
    "ChaosReport",
    "ChaosScenario",
    "CheckpointManager",
    "CheckpointState",
    "LOG_SCHEMA_VERSION",
    "LoadReport",
    "LogWriter",
    "OPS",
    "OverlayServer",
    "OverlayService",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RecoveryError",
    "RecoveryReport",
    "ReplayResult",
    "RetryBudgetExceeded",
    "ServeClient",
    "ServeError",
    "Supervisor",
    "SupervisorReport",
    "TRAFFIC_MODELS",
    "format_summary",
    "read_segment",
    "replay_log",
    "run_chaos",
    "run_load",
    "run_server",
    "start_background_server",
]
