"""The asyncio transport of ``repro serve``.

One :class:`OverlayServer` wraps one
:class:`~repro.serve.service.OverlayService` and speaks the
newline-delimited JSON protocol (:mod:`repro.serve.protocol`) over a TCP
port or a unix socket.  Request handling and epoch ticks all run on the
one event loop, so lookups serialize against epoch advancement without
locks: a lookup observes either the pre-tick or the post-tick overlay,
never a half-committed one.

Cadence: with ``cadence > 0`` a background task ticks the service every
``cadence`` seconds; with ``cadence == 0`` epochs advance only on
explicit ``step`` requests (the mode tests and the workload generator
use, so the measured overlay is pinned).

Subscriptions: a ``subscribe`` request registers the connection for the
event stream; every tick's payload is queued per subscriber and flushed
by a writer task, so one slow consumer cannot stall the tick loop.

Admission control: every request passes through one bounded FIFO queue
drained by a single worker task.  When the queue is full the request is
*shed* immediately with a ``busy`` error (clients treat it as retryable
backoff pressure) instead of accumulating unbounded latency — the
``serve.shed`` counter records every shed.

Graceful drain: :meth:`OverlayServer.drain` (wired to SIGTERM by
:func:`run_server`) closes the listener, lets every queued and in-flight
request finish, then closes the service — which seals the mutation log
with its ``close`` entry, so a drained shutdown needs no recovery replay
at the next start.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import threading
import time
from typing import Dict, Optional, Tuple

from repro.serve.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    encode,
    error_response,
    parse_request,
    response,
)
from repro.serve.service import OverlayService, ServeError
from repro.telemetry import runtime as telemetry
from repro.util.validation import ValidationError

#: Pending epoch events per subscriber before the oldest is dropped.
SUBSCRIBER_QUEUE_LIMIT = 256

#: Pending requests admitted before new ones are shed with ``busy``.
REQUEST_QUEUE_LIMIT = 1024


class OverlayServer:
    """Serve one :class:`OverlayService` over a local socket."""

    def __init__(
        self,
        service: OverlayService,
        *,
        cadence: float = 0.0,
        queue_limit: int = REQUEST_QUEUE_LIMIT,
    ):
        self.service = service
        self.cadence = float(cadence)
        self.queue_limit = int(queue_limit)
        if self.queue_limit < 1:
            raise ValidationError("queue_limit must be at least 1")
        self._server: Optional[asyncio.base_events.Server] = None
        self._metrics_server: Optional[asyncio.base_events.Server] = None
        self._shutdown = asyncio.Event()
        self._draining = False
        self._requests: Optional[asyncio.Queue] = None
        self._worker: Optional[asyncio.Task] = None
        self._subscriber_queues: Dict[int, asyncio.Queue] = {}
        self._next_connection = 0
        #: Drop-oldest backpressure ledger: events dropped in total, per
        #: subscriber connection, and the deepest queue ever observed —
        #: surfaced by ``stats``/``metrics`` so a slow consumer is
        #: visible instead of silently losing epochs.
        self._dropped_events = 0
        self._drops_by_connection: Dict[int, int] = {}
        self._max_queue_depth = 0
        #: Deepest request-queue backlog ever observed.
        self._max_request_depth = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(
        self,
        *,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        socket_path: Optional[str] = None,
    ) -> str:
        """Bind and start accepting; returns the bound address string."""
        if (port is None) == (socket_path is None):
            raise ValidationError("exactly one of port or socket_path is required")
        self._requests = asyncio.Queue(maxsize=self.queue_limit)
        self._worker = asyncio.get_running_loop().create_task(
            self._request_worker()
        )
        if socket_path is not None:
            # A SIGKILL-ed predecessor leaves its socket file behind;
            # binding over it is the supervised-restart path.
            if os.path.exists(socket_path):
                try:
                    os.unlink(socket_path)
                except OSError:
                    pass
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=socket_path, limit=MAX_LINE_BYTES
            )
            address = socket_path
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=host, port=port, limit=MAX_LINE_BYTES
            )
            bound = self._server.sockets[0].getsockname()
            address = f"{bound[0]}:{bound[1]}"
        if self.cadence > 0:
            asyncio.get_running_loop().create_task(self._tick_loop())
        return address

    async def start_metrics(
        self, *, host: str = "127.0.0.1", port: int = 0
    ) -> str:
        """Expose the telemetry registry as Prometheus text over HTTP.

        A deliberately minimal endpoint: every request — whatever the
        path — answers ``200 text/plain`` with the current
        :meth:`~repro.telemetry.registry.MetricsRegistry.render_prometheus`
        dump (empty body when the process has no registry).  Returns the
        bound ``host:port``.
        """
        self._metrics_server = await asyncio.start_server(
            self._handle_metrics_request, host=host, port=port
        )
        bound = self._metrics_server.sockets[0].getsockname()
        return f"{bound[0]}:{bound[1]}"

    async def _handle_metrics_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            # Drain the request line and headers; the reply is the same
            # for every path, so nothing in them matters.
            while True:
                header = await reader.readline()
                if not header.strip():
                    break
            registry = telemetry.metrics()
            body = (registry.render_prometheus() if registry else "").encode()
            writer.write(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: text/plain; charset=utf-8\r\n"
                b"Connection: close\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode()
                + body
            )
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def serve_until_shutdown(self) -> None:
        """Block until a ``shutdown`` request (or :meth:`stop`) lands."""
        await self._shutdown.wait()
        if self._draining:
            await self.drain()
        else:
            await self.stop()

    def request_drain(self) -> None:
        """Flag a graceful drain and wake :meth:`serve_until_shutdown`.

        Signal-handler safe: only sets flags; the actual drain runs on
        the event loop.
        """
        self._draining = True
        self._shutdown.set()

    async def drain(self) -> None:
        """Graceful shutdown: stop accepting, finish in-flight, seal.

        The listener closes first (new connections are refused), queued
        requests are processed to completion, connection loops exit as
        their clients disconnect or their next read lands after the
        shutdown flag, and only then does the service close — writing
        the mutation log's ``close`` entry so the next start replays
        nothing.
        """
        self._draining = True
        self._shutdown.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._requests is not None:
            await self._requests.join()
        await self.stop()

    async def stop(self) -> None:
        """Stop accepting, drop subscribers, close the service."""
        self._shutdown.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
            self._metrics_server = None
        if self._worker is not None:
            self._worker.cancel()
            self._worker = None
        self._subscriber_queues.clear()
        if not self.service.closed:
            self.service.close()

    async def _tick_loop(self) -> None:
        while not self._shutdown.is_set():
            try:
                await asyncio.wait_for(
                    self._shutdown.wait(), timeout=self.cadence
                )
                return
            except asyncio.TimeoutError:
                pass
            if not self.service.closed:
                self.service.tick()

    # ------------------------------------------------------------------ #
    # Admission control
    # ------------------------------------------------------------------ #
    async def _request_worker(self) -> None:
        """Drain the admitted-request queue, one request at a time."""
        assert self._requests is not None
        try:
            while True:
                line, connection, future = await self._requests.get()
                try:
                    if not future.cancelled():
                        future.set_result(self._dispatch(line, connection))
                finally:
                    self._requests.task_done()
        except asyncio.CancelledError:
            pass

    def _admit(
        self, line: bytes, connection: int
    ) -> Tuple[Optional["asyncio.Future"], Optional[Dict[str, object]]]:
        """Queue one request, or shed it with a ``busy`` reply."""
        assert self._requests is not None
        future = asyncio.get_running_loop().create_future()
        try:
            self._requests.put_nowait((line, connection, future))
        except asyncio.QueueFull:
            # The collector surfaces this as ``serve.shed`` at snapshot
            # time; counting it here too would double-report.
            self.service.counters["shed"] += 1
            return None, error_response(
                _recover_request_id(line),
                "busy",
                f"request queue is full ({self.queue_limit} pending); retry "
                "with backoff",
            )
        depth = self._requests.qsize()
        if depth > self._max_request_depth:
            self._max_request_depth = depth
        return future, None

    # ------------------------------------------------------------------ #
    # Connections
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection = self._next_connection
        self._next_connection += 1
        writer_task: Optional[asyncio.Task] = None
        try:
            while not self._shutdown.is_set():
                try:
                    line = await reader.readline()
                except ConnectionResetError:
                    break
                except (ValueError, asyncio.LimitOverrunError):
                    writer.write(
                        encode(error_response(None, "too-large", "request line too large"))
                    )
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                future, shed = self._admit(line, connection)
                if future is None:
                    writer.write(encode(shed))
                    await writer.drain()
                    continue
                message, subscribe, shutdown = await future
                if subscribe and connection not in self._subscriber_queues:
                    queue: asyncio.Queue = asyncio.Queue()
                    self._subscriber_queues[connection] = queue
                    self.service.subscribe(
                        lambda payload, q=queue, c=connection: self._enqueue(
                            c, q, payload
                        )
                    )
                    writer_task = asyncio.get_running_loop().create_task(
                        self._drain_events(queue, writer)
                    )
                writer.write(encode(message))
                await writer.drain()
                if shutdown:
                    self._shutdown.set()
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            if writer_task is not None:
                writer_task.cancel()
            self._subscriber_queues.pop(connection, None)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    def _enqueue(
        self, connection: int, queue: asyncio.Queue, payload: Dict[str, object]
    ) -> None:
        if queue.qsize() >= SUBSCRIBER_QUEUE_LIMIT:
            try:
                queue.get_nowait()
            except asyncio.QueueEmpty:
                pass
            else:
                self._dropped_events += 1
                self._drops_by_connection[connection] = (
                    self._drops_by_connection.get(connection, 0) + 1
                )
                telemetry.count("serve.subscribers.dropped")
        queue.put_nowait(payload)
        depth = queue.qsize()
        if depth > self._max_queue_depth:
            self._max_queue_depth = depth

    def _subscriber_stats(self) -> Dict[str, object]:
        """The subscriber/backpressure block of ``stats`` and ``metrics``."""
        return {
            "count": len(self._subscriber_queues),
            "queue_limit": SUBSCRIBER_QUEUE_LIMIT,
            "dropped_events": self._dropped_events,
            "dropped_by_connection": {
                str(connection): drops
                for connection, drops in sorted(self._drops_by_connection.items())
            },
            "max_depth": self._max_queue_depth,
        }

    def _admission_stats(self) -> Dict[str, object]:
        """The admission-control block of ``stats`` and ``metrics``."""
        return {
            "queue_limit": self.queue_limit,
            "depth": self._requests.qsize() if self._requests is not None else 0,
            "max_depth": self._max_request_depth,
            "shed": self.service.counters.get("shed", 0),
        }

    async def _drain_events(
        self, queue: asyncio.Queue, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                payload = await queue.get()
                writer.write(encode(payload))
                await writer.drain()
        except (asyncio.CancelledError, ConnectionResetError, BrokenPipeError):
            pass

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def _dispatch(self, line: bytes, connection: int):
        """Handle one request line; returns (message, subscribe?, shutdown?).

        Every request's handling latency lands in the per-op
        ``serve.request.<op>`` histogram (a no-op without a registry);
        lines that fail protocol parsing are pooled under ``invalid``.
        """
        start = time.perf_counter()
        op, message, subscribe, shutdown = self._handle_request(line)
        telemetry.observe(f"serve.request.{op}", time.perf_counter() - start)
        return message, subscribe, shutdown

    def _handle_request(self, line: bytes):
        """Dispatch one request; returns (op, message, subscribe?, shutdown?)."""
        request_id: Optional[object] = None
        op = "invalid"
        try:
            request = parse_request(line)
            request_id = request.get("id")
            op = request["op"]
            if op == "lookup":
                result = self.service.lookup(
                    request.get("src"),
                    request.get("dst"),
                    engine=request.get("engine"),
                    want_path=bool(request.get("path", False)),
                )
                return op, response(request_id, **result), False, False
            if op == "lookup_batch":
                result = self.service.lookup_batch(
                    request.get("pairs"), engine=request.get("engine")
                )
                return op, response(request_id, **result), False, False
            if op == "mutate":
                idem = request.get("idem")
                if idem is not None and not isinstance(idem, str):
                    raise ProtocolError("idem must be a string when present")
                result = self.service.mutate(request.get("mutation"), idem=idem)
                return op, response(request_id, **result), False, False
            if op == "step":
                payload = self.service.step(request.get("expect"))
                reply: Dict[str, object] = {
                    "epoch": payload["epoch"],
                    "digest": payload["digest"],
                }
                if payload.get("duplicate"):
                    reply["duplicate"] = True
                return op, response(request_id, **reply), False, False
            if op == "subscribe":
                return op, response(request_id, subscribed=True), True, False
            if op == "snapshot":
                snapshot = self.service.snapshot()
                snapshot["protocol"] = PROTOCOL_VERSION
                return op, response(request_id, **snapshot), False, False
            if op == "stats":
                stats = self.service.stats()
                stats["protocol"] = PROTOCOL_VERSION
                stats["subscribers"] = self._subscriber_stats()
                stats["admission"] = self._admission_stats()
                return op, response(request_id, **stats), False, False
            if op == "metrics":
                data = self.service.metrics()
                data["protocol"] = PROTOCOL_VERSION
                data["subscribers"] = self._subscriber_stats()
                data["admission"] = self._admission_stats()
                return op, response(request_id, **data), False, False
            # op == "shutdown" (parse_request already rejected unknown ops)
            return op, response(request_id, shutting_down=True), False, True
        except ProtocolError as error:
            if request_id is None:
                request_id = _recover_request_id(line)
            return (
                op,
                error_response(request_id, "bad-request", str(error)),
                False,
                False,
            )
        except ServeError as error:
            return op, error_response(request_id, error.code, str(error)), False, False
        except ValidationError as error:
            return op, error_response(request_id, "invalid", str(error)), False, False

    # ------------------------------------------------------------------ #
    # Entry points
    # ------------------------------------------------------------------ #


def _recover_request_id(line: bytes):
    """Best-effort ``id`` of a request that failed protocol parsing.

    A client pipelining by id deserves the echo even on an unknown op;
    a line that is not a JSON object at all has no id to recover.
    """
    try:
        request = json.loads(line)
    except (UnicodeDecodeError, ValueError):
        return None
    if isinstance(request, dict) and isinstance(request.get("id"), (str, int)):
        return request["id"]
    return None


def run_server(
    service: OverlayService,
    *,
    host: str = "127.0.0.1",
    port: Optional[int] = None,
    socket_path: Optional[str] = None,
    cadence: float = 0.0,
    metrics_port: Optional[int] = None,
    queue_limit: int = REQUEST_QUEUE_LIMIT,
    ready: Optional[threading.Event] = None,
    announce=None,
    announce_metrics=None,
    handle_sigterm: bool = False,
) -> None:
    """Run a server until shutdown (blocking; the CLI entry point).

    ``metrics_port`` additionally binds the Prometheus-text endpoint of
    :meth:`OverlayServer.start_metrics` on ``host``;
    ``announce_metrics`` receives its bound address.  With
    ``handle_sigterm`` (the CLI's foreground mode — requires the main
    thread) SIGTERM triggers a graceful drain instead of the default
    hard exit: the listener closes, in-flight requests finish, and the
    mutation log is sealed.
    """

    async def main() -> None:
        server = OverlayServer(service, cadence=cadence, queue_limit=queue_limit)
        if handle_sigterm:
            try:
                asyncio.get_running_loop().add_signal_handler(
                    signal.SIGTERM, server.request_drain
                )
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        address = await server.start(
            host=host, port=port, socket_path=socket_path
        )
        if metrics_port is not None:
            metrics_address = await server.start_metrics(
                host=host, port=metrics_port
            )
            if announce_metrics is not None:
                announce_metrics(metrics_address)
        if announce is not None:
            announce(address)
        if ready is not None:
            ready.set()
        await server.serve_until_shutdown()

    asyncio.run(main())


def start_background_server(
    service: OverlayService,
    *,
    host: str = "127.0.0.1",
    port: Optional[int] = None,
    socket_path: Optional[str] = None,
    cadence: float = 0.0,
    queue_limit: int = REQUEST_QUEUE_LIMIT,
) -> threading.Thread:
    """Run a server on a daemon thread; returns once it is accepting.

    The test/benchmark harness: the thread exits when a client sends
    ``shutdown``.
    """
    ready = threading.Event()
    thread = threading.Thread(
        target=run_server,
        kwargs=dict(
            host=host,
            port=port,
            socket_path=socket_path,
            cadence=cadence,
            queue_limit=queue_limit,
            ready=ready,
        ),
        args=(service,),
        daemon=True,
    )
    thread.start()
    if not ready.wait(timeout=30):
        raise RuntimeError("overlay server failed to start within 30s")
    return thread


__all__ = [
    "OverlayServer",
    "REQUEST_QUEUE_LIMIT",
    "SUBSCRIBER_QUEUE_LIMIT",
    "run_server",
    "start_background_server",
]
