"""The serve workload generator: millions of lookups against a live server.

``repro serve-load`` drives a running ``repro serve`` instance with one
of three traffic models and reports sustained lookup throughput plus
p50/p95/p99 per-lookup latency:

* ``uniform`` — independent uniform source/target pairs;
* ``multipath`` — Section 6.1 transfers via
  :func:`repro.apps.multipath.session_lookup_pairs` (popularity-skewed
  targets, 1–4 lookups per session);
* ``realtime`` — Section 6.2 streams via
  :func:`repro.apps.realtime.stream_lookup_pairs` (``copies`` redundant
  probes plus a reverse feedback probe per stream).

Lookups ship in ``lookup_batch`` frames; latency is the per-batch
round-trip divided across its lookups, which is the per-lookup service
time the overlay's clients would observe when pipelining.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.apps.multipath import session_lookup_pairs
from repro.apps.realtime import stream_lookup_pairs
from repro.serve.client import ServeClient
from repro.util.rng import as_generator
from repro.util.stats import percentile
from repro.util.validation import ValidationError

#: Traffic models ``--model`` may name.
TRAFFIC_MODELS = ("uniform", "multipath", "realtime")


@dataclass
class LoadReport:
    """What one serve-load run measured."""

    model: str
    lookups: int
    batches: int
    batch_size: int
    seconds: float
    throughput: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    errors: int
    unreachable: int
    mutations: int
    engine: str
    epoch: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "model": self.model,
            "lookups": self.lookups,
            "batches": self.batches,
            "batch_size": self.batch_size,
            "seconds": self.seconds,
            "throughput": self.throughput,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "errors": self.errors,
            "unreachable": self.unreachable,
            "mutations": self.mutations,
            "engine": self.engine,
            "epoch": self.epoch,
        }


def generate_pairs(
    model: str, n: int, lookups: int, rng
) -> List[Tuple[int, int]]:
    """At least ``lookups`` source/target pairs under a traffic model."""
    if model not in TRAFFIC_MODELS:
        raise ValidationError(
            f"unknown traffic model {model!r}; expected one of {list(TRAFFIC_MODELS)}"
        )
    if model == "uniform":
        pairs = []
        while len(pairs) < lookups:
            src = int(rng.integers(n))
            dst = int(rng.integers(n - 1))
            if dst >= src:
                dst += 1
            pairs.append((src, dst))
        return pairs
    pairs = []
    while len(pairs) < lookups:
        if model == "multipath":
            # ~2.5 lookups per session on average.
            sessions = max(1, (lookups - len(pairs)) // 2)
            pairs.extend(session_lookup_pairs(n, sessions=sessions, rng=rng))
        else:
            streams = max(1, (lookups - len(pairs)) // 4)
            pairs.extend(stream_lookup_pairs(n, streams=streams, rng=rng))
    return pairs[:lookups]


def run_load(
    *,
    host: str = "127.0.0.1",
    port: Optional[int] = None,
    socket_path: Optional[str] = None,
    model: str = "uniform",
    lookups: int = 100_000,
    batch_size: int = 256,
    seed: int = 0,
    engine: Optional[str] = None,
    mutate: Optional[Dict[str, object]] = None,
    step_after_mutate: bool = True,
    shutdown: bool = False,
) -> LoadReport:
    """Drive a running server and measure it.

    With ``mutate`` set, the mutation is enqueued roughly halfway through
    the run and (by default) committed with a ``step`` — so the workload
    spans a live overlay change, which is the point of the service.
    """
    if lookups < 1:
        raise ValidationError("lookups must be at least 1")
    if batch_size < 1:
        raise ValidationError("batch_size must be at least 1")
    rng = as_generator(seed)
    client = ServeClient(host=host, port=port, socket_path=socket_path)
    try:
        snapshot = client.snapshot()
        n = int(snapshot["scenario"]["n"])
        pairs = generate_pairs(model, n, int(lookups), rng)
        batches = [
            pairs[start : start + batch_size]
            for start in range(0, len(pairs), batch_size)
        ]
        mutate_at = len(batches) // 2 if mutate is not None else -1
        latencies_ms: List[float] = []
        errors = 0
        unreachable = 0
        mutations = 0
        last_epoch = -1
        started = time.perf_counter()
        for index, batch in enumerate(batches):
            if index == mutate_at:
                client.mutate(mutate)
                mutations += 1
                if step_after_mutate:
                    client.step()
            sent = time.perf_counter()
            try:
                reply = client.lookup_batch(batch, engine=engine)
            except ValidationError:
                errors += len(batch)
                continue
            elapsed_ms = (time.perf_counter() - sent) * 1000.0
            latencies_ms.extend([elapsed_ms / len(batch)] * len(batch))
            values = reply["values"]
            unreachable += sum(1 for value in values if value is None)
            last_epoch = int(reply["epoch"])
        seconds = time.perf_counter() - started
        served = len(latencies_ms)
        report = LoadReport(
            model=model,
            lookups=served,
            batches=len(batches),
            batch_size=int(batch_size),
            seconds=seconds,
            throughput=served / seconds if seconds > 0 else float("inf"),
            p50_ms=percentile(latencies_ms, 50) if latencies_ms else float("nan"),
            p95_ms=percentile(latencies_ms, 95) if latencies_ms else float("nan"),
            p99_ms=percentile(latencies_ms, 99) if latencies_ms else float("nan"),
            errors=errors,
            unreachable=unreachable,
            mutations=mutations,
            engine=str(reply["engine"]) if served else "",
            epoch=last_epoch,
        )
        if shutdown:
            client.shutdown()
        return report
    finally:
        client.close()


def format_summary(report: LoadReport) -> str:
    """The machine-greppable one-liner CI latches onto."""
    return (
        f"SERVE total={report.lookups} batches={report.batches} "
        f"thru={report.throughput:.0f}/s "
        f"p50={report.p50_ms:.4f}ms p95={report.p95_ms:.4f}ms "
        f"p99={report.p99_ms:.4f}ms "
        f"model={report.model} mutations={report.mutations} "
        f"errors={report.errors}"
    )


def write_report(report: LoadReport, path: str) -> None:
    """Persist the report as JSON (for BENCH-style tracking)."""
    with open(path, "w") as handle:
        json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")


__all__ = [
    "LoadReport",
    "TRAFFIC_MODELS",
    "format_summary",
    "generate_pairs",
    "run_load",
    "write_report",
]
