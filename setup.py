"""Setuptools shim for environments without PEP 660 editable-install support.

All project metadata lives in ``pyproject.toml``; this file only exists so
that ``pip install -e . --no-use-pep517`` (the legacy editable path) works
on machines whose setuptools/wheel combination cannot build editable
wheels — such as offline boxes without the ``wheel`` package.
"""

from setuptools import setup

setup()
