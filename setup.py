"""Package metadata and runtime dependency declaration.

CI installs the package (``pip install .[test]``) instead of a
hand-kept dependency list, so the ``install_requires`` below is the
single source of truth for runtime requirements.  The legacy
``setup.py`` form (rather than ``pyproject.toml``) also keeps
``pip install -e . --no-use-pep517`` working on machines whose
setuptools/wheel combination cannot build editable wheels — such as
offline boxes without the ``wheel`` package.
"""

import os
import re

from setuptools import find_packages, setup


def _version() -> str:
    here = os.path.dirname(os.path.abspath(__file__))
    with open(os.path.join(here, "src", "repro", "version.py")) as handle:
        match = re.search(r"__version__\s*=\s*\"([^\"]+)\"", handle.read())
    if not match:
        raise RuntimeError("cannot parse src/repro/version.py")
    return match.group(1)


setup(
    name="repro-egoist",
    version=_version(),
    description=(
        "Reproduction of EGOIST: selfish neighbor selection in overlay "
        "networks (CoNEXT 2008)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy>=1.24",
        "scipy>=1.10",
        "networkx>=3.0",
    ],
    extras_require={
        "test": [
            "pytest",
            "pytest-benchmark",
            "hypothesis",
        ],
    },
)
